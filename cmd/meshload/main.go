// Command meshload is an open-loop load generator for meshd. It creates
// (or recreates) a mesh, injects an initial fault configuration, fires
// route requests from a worker pool — at a fixed arrival rate or
// closed-loop — and optionally churns the fault configuration mid-run,
// the serving regime the engine's snapshot architecture is built for.
// Each churn tick is one atomic transaction that repairs the previous
// rotation's faults and adds a fresh random set, so the steady-state
// fault count stays at -churn-faults for the whole run (and each commit
// is a bounded delta, exercising the engine's incremental rebuild). It reports throughput, latency percentiles,
// and a per-wire-code response tally, and exits non-zero when any
// response leaks outside the documented taxonomy (5xx, transport
// failures, unknown codes) — which makes it the CI smoke gate.
//
// With -journal, the churn source is a recorded transaction log instead
// of random injection: the target mesh is created with the recording's
// dimensions and checkpoint fault set, and every journaled transaction
// is re-applied (as an atomic add/repair POST) in its original order —
// so state recovered from a meshd -data-dir can be load-tested against
// the exact fault history of the original run.
//
// Overload behavior: 429 RESOURCE_EXHAUSTED responses are retried up to
// -retries times with exponential backoff and jitter, never backing off
// less than the server's Retry-After hint. -tenants spreads requests
// over N synthetic tenant identities (X-Tenant: t0..tN-1) so per-tenant
// admission control can be exercised; the summary tallies retries, total
// backoff time, and 429s per tenant. A non-chaos run that still ends
// with RESOURCE_EXHAUSTED outcomes after retrying exits non-zero — an
// adequately provisioned server must absorb the offered load.
//
// -chaos is the fault-injection assertion mode (pair with meshd -fail):
// STORAGE commit refusals and residual 429s are expected there, and the
// run instead asserts the taxonomy NEVER leaks — every response decodes
// to a documented wire code — while routes keep being delivered.
//
// Usage:
//
//	meshload -addr 127.0.0.1:8080 [-mesh load] [-n 32] [-faults 60] \
//	         [-seed 1] [-requests 1000] [-duration 0] [-rate 0] \
//	         [-workers 16] [-oracle] [-algo rb2] \
//	         [-churn 0] [-churn-faults -1] [-journal dir] [-keep] \
//	         [-tenants 0] [-retries 3] [-backoff 50ms] [-chaos]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
)

// wire mirrors of the internal/server request/response bodies (meshload
// speaks the public wire protocol only, like any external client).
type coord struct {
	X int `json:"x"`
	Y int `json:"y"`
}

type routeRequest struct {
	Src       coord  `json:"src"`
	Dst       coord  `json:"dst"`
	Algorithm string `json:"algorithm,omitempty"`
	NoOracle  bool   `json:"no_oracle,omitempty"`
}

type wireError struct {
	Code              string  `json:"code"`
	Message           string  `json:"message"`
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
}

type errorBody struct {
	Error wireError `json:"error"`
}

// knownCodes is the documented wire taxonomy; anything else in a
// response is a leak.
var knownCodes = map[string]bool{
	"OUTSIDE_MESH": true, "FAULTY_ENDPOINT": true, "UNREACHABLE": true,
	"ABORTED": true, "CANCELED": true, "INVALID_FAULT_COUNT": true,
	"NOT_ADJACENT": true, "WATCH_CLOSED": true, "RESOURCE_EXHAUSTED": true,
	"BAD_REQUEST": true, "MESH_NOT_FOUND": true, "MESH_EXISTS": true,
	"REGISTRY_FULL": true, "INTERNAL": true, "STORAGE": true,
}

// tally accumulates response outcomes across workers.
type tally struct {
	mu        sync.Mutex
	byCode    map[string]int
	latencies []time.Duration
	ok        int
	leaked    int // transport errors, undecodable bodies, off-taxonomy codes
	retries   int // 429s retried after backoff
	backoff   time.Duration
	tenant429 map[string]int
}

func (t *tally) record(code string, latency time.Duration, ok, leak bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.latencies = append(t.latencies, latency)
	if ok {
		t.ok++
	} else {
		t.byCode[code]++
	}
	if leak {
		t.leaked++
	}
}

// recordRetry tallies one backed-off 429 retry.
func (t *tally) recordRetry(tenant string, wait time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retries++
	t.backoff += wait
	t.tenant429[tenant]++
}

// record429 tallies a 429 that was NOT retried (budget exhausted or
// retries disabled) — it lands in byCode via record; this only feeds the
// per-tenant breakdown.
func (t *tally) record429(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tenant429[tenant]++
}

// classifyLeak decides whether a decoded non-2xx outcome is outside the
// documented taxonomy. INTERNAL is always a leak (a served request must
// never produce it); STORAGE is a leak unless the run injects storage
// faults on purpose (-chaos).
func classifyLeak(code string, chaos bool) bool {
	switch {
	case !knownCodes[code]:
		return true
	case code == "INTERNAL":
		return true
	case code == "STORAGE":
		return !chaos
	}
	return false
}

// backoffFor computes the wait before retry #attempt (0-based) of a 429:
// exponential from base with 0.5-1.5x jitter, floored at the server's
// Retry-After hint.
func backoffFor(base time.Duration, attempt int, hint time.Duration, rng *rand.Rand) time.Duration {
	exp := base << min(attempt, 6)
	wait := time.Duration(float64(exp) * (0.5 + rng.Float64()))
	return max(wait, hint)
}

// retryHint extracts the server's backoff hint: the JSON field has
// sub-second precision, the Retry-After header is the whole-second
// fallback.
func retryHint(eb errorBody, resp *http.Response) time.Duration {
	if eb.Error.RetryAfterSeconds > 0 {
		return time.Duration(eb.Error.RetryAfterSeconds * float64(time.Second))
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "meshd address (host:port or http URL)")
	meshName := flag.String("mesh", "load", "mesh name to create and drive")
	n := flag.Int("n", 32, "mesh side length")
	faults := flag.Int("faults", 60, "initial random faults")
	seed := flag.Int64("seed", 1, "fault and endpoint seed")
	requests := flag.Int("requests", 1000, "total requests (0 = until -duration)")
	duration := flag.Duration("duration", 0, "run length (0 = until -requests)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	workers := flag.Int("workers", 16, "concurrent request workers")
	oracle := flag.Bool("oracle", false, "request BFS oracle reports (off = serving hot path)")
	algo := flag.String("algo", "rb2", "routing algorithm: ecube, rb1, rb2, rb3")
	churn := flag.Duration("churn", 0, "rotate the fault configuration every interval (0 = off; with -journal, 0 = replay back-to-back)")
	churnFaults := flag.Int("churn-faults", -1, "steady-state fault count under churn (-1 = same as -faults)")
	journalDir := flag.String("journal", "", "replay this recorded journal dir (a meshd -data-dir mesh subdirectory) as the churn source")
	keep := flag.Bool("keep", false, "keep the mesh registered after the run")
	tenants := flag.Int("tenants", 0, "spread requests over N synthetic tenants via X-Tenant (0 = no header)")
	retries := flag.Int("retries", 3, "retry a 429 this many times with backoff before recording it")
	backoffBase := flag.Duration("backoff", 50*time.Millisecond, "exponential backoff base for 429 retries (jittered, floored at Retry-After)")
	chaos := flag.Bool("chaos", false, "fault-injection mode: tolerate STORAGE/429 outcomes but assert the taxonomy never leaks")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if *requests <= 0 && *duration <= 0 {
		*requests = 1000
	}
	if *churnFaults < 0 {
		*churnFaults = *faults
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *workers * 2,
		MaxIdleConnsPerHost: *workers * 2,
	}}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "meshload: "+format+"\n", args...)
		os.Exit(1)
	}

	// With -journal, the recording dictates geometry, the initial fault
	// set, and the churn transactions.
	width, height := *n, *n
	var replay []journal.Record
	var initial []map[string]any
	if *journalDir != "" {
		base, recs, err := journal.ReadBase(*journalDir)
		if err != nil {
			fail("read journal %s: %v", *journalDir, err)
		}
		width, height = base.Width, base.Height
		replay = recs
		for _, c := range base.Faults {
			initial = append(initial, map[string]any{"op": "add", "at": map[string]any{"x": c.X, "y": c.Y}})
		}
		fmt.Printf("meshload: replaying %s: %dx%d mesh, %d checkpoint faults, %d recorded transactions\n",
			*journalDir, width, height, len(base.Faults), len(recs))
	}

	// (Re)create the target mesh and seed its fault configuration.
	del, err := http.NewRequest(http.MethodDelete, base+"/v1/meshes/"+*meshName, nil)
	if err != nil {
		fail("%v", err)
	}
	if resp, err := client.Do(del); err != nil {
		fail("cannot reach %s: %v", base, err)
	} else {
		drainBody(resp)
	}
	status, body := post(client, base+"/v1/meshes",
		map[string]any{"name": *meshName, "width": width, "height": height})
	if status != http.StatusCreated {
		fail("create mesh: HTTP %d: %s", status, body)
	}
	if *journalDir == "" {
		initial = []map[string]any{{"op": "inject_random", "count": *faults, "seed": *seed}}
	}
	if len(initial) > 0 {
		status, body = postRetry429(client, base+"/v1/meshes/"+*meshName+"/faults",
			map[string]any{"ops": initial}, *retries, *backoffBase, rand.New(rand.NewSource(*seed)), nil)
		if status != http.StatusOK {
			fail("seed faults: HTTP %d: %s", status, body)
		}
	}

	routeURL := base + "/v1/meshes/" + *meshName + "/route"
	t := &tally{byCode: make(map[string]int), tenant429: make(map[string]int)}
	var sent atomic.Int64
	var replayAttempted atomic.Int64

	// Open loop: arrivals tick at -rate into a deep buffer so a slow
	// server grows the queue instead of slowing the arrival process.
	// Closed loop (-rate 0): workers fire as fast as responses return.
	tickets := make(chan struct{}, 1<<16)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	go func() {
		defer close(tickets)
		emitted := 0
		var tick <-chan time.Time
		if *rate > 0 {
			ticker := time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer ticker.Stop()
			tick = ticker.C
		}
		for {
			if *requests > 0 && emitted >= *requests {
				return
			}
			if tick != nil {
				select {
				case <-tick:
				case <-stop:
					return
				}
			}
			select {
			case tickets <- struct{}{}:
				emitted++
			case <-stop:
				return
			}
		}
	}()
	if *duration > 0 {
		time.AfterFunc(*duration, halt)
	}

	// Fault churn: transactions land mid-run, forcing snapshot
	// publications underneath the in-flight request stream.
	churnDone := make(chan int, 1)
	if *journalDir != "" {
		// -journal owns the churn source even when the recording has no
		// post-checkpoint tail: falling through to random injection would
		// pollute the faithfully restored state.
		// Journal replay: re-apply the recorded history in order, paced
		// by -churn (0 = back-to-back). Each record becomes one atomic
		// add/repair transaction, exactly as the original run committed it.
		go func() {
			txns := 0
			defer func() { churnDone <- txns }()
			rng := rand.New(rand.NewSource(*seed * 31))
			var tick <-chan time.Time
			if *churn > 0 {
				ticker := time.NewTicker(*churn)
				defer ticker.Stop()
				tick = ticker.C
			}
			for _, rec := range replay {
				replayAttempted.Add(1)
				if tick != nil {
					select {
					case <-stop:
						return
					case <-tick:
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				var ops []map[string]any
				for _, c := range rec.Adds {
					ops = append(ops, map[string]any{"op": "add", "at": map[string]any{"x": c.X, "y": c.Y}})
				}
				for _, c := range rec.Repairs {
					ops = append(ops, map[string]any{"op": "repair", "at": map[string]any{"x": c.X, "y": c.Y}})
				}
				if len(ops) == 0 {
					replayAttempted.Add(-1)
					continue // an empty-delta commit has no wire form
				}
				status, body := postRetry429(client, base+"/v1/meshes/"+*meshName+"/faults",
					map[string]any{"ops": ops}, *retries, *backoffBase, rng, stop)
				if status != http.StatusOK {
					if *chaos && strings.Contains(body, `"STORAGE"`) {
						fmt.Fprintf(os.Stderr, "meshload: replay stopped: journal degraded (STORAGE) at v%d\n", rec.Version)
						return
					}
					fmt.Fprintf(os.Stderr, "meshload: replay transaction v%d: HTTP %d: %s\n", rec.Version, status, body)
					continue
				}
				txns++
			}
		}()
	} else if *churn > 0 {
		if *churnFaults >= width*height {
			fail("-churn-faults %d would disable the whole %dx%d mesh", *churnFaults, width, height)
		}
		// Each tick commits ONE atomic transaction that repairs the
		// previous rotation's faults and adds a fresh random set, so the
		// steady-state fault count stays pinned at -churn-faults instead
		// of degrading the mesh over a long run. The seeded configuration
		// is fetched once up front to become the first rotation — churn
		// never stacks on top of the baseline.
		prev, err := getFaults(client, base+"/v1/meshes/"+*meshName+"/faults")
		if err != nil {
			fail("fetch seeded faults: %v", err)
		}
		go func() {
			txns := 0
			ticker := time.NewTicker(*churn)
			defer ticker.Stop()
			defer func() { churnDone <- txns }()
			rng := rand.New(rand.NewSource(*seed * 1000003))
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				fresh := make([]coord, 0, *churnFaults)
				seen := make(map[coord]bool, *churnFaults)
				for len(fresh) < *churnFaults {
					c := coord{X: rng.Intn(width), Y: rng.Intn(height)}
					if !seen[c] {
						seen[c] = true
						fresh = append(fresh, c)
					}
				}
				// Repairs first: a fresh coord colliding with an outgoing
				// one is repaired then re-added, netting to faulty.
				ops := make([]map[string]any, 0, len(prev)+len(fresh))
				for _, c := range prev {
					ops = append(ops, map[string]any{"op": "repair", "at": map[string]any{"x": c.X, "y": c.Y}})
				}
				for _, c := range fresh {
					ops = append(ops, map[string]any{"op": "add", "at": map[string]any{"x": c.X, "y": c.Y}})
				}
				status, body := postRetry429(client, base+"/v1/meshes/"+*meshName+"/faults",
					map[string]any{"ops": ops}, *retries, *backoffBase, rng, stop)
				if status != http.StatusOK {
					// A degraded journal refuses every further commit — stop
					// churning instead of spamming a warning per tick. In
					// -chaos runs that is the expected mid-run event.
					if strings.Contains(body, `"STORAGE"`) {
						fmt.Fprintf(os.Stderr, "meshload: churn stopped: journal degraded (STORAGE) after %d transactions\n", txns)
						return
					}
					// The transaction is atomic: nothing committed, so the
					// outgoing rotation is still published. Keep prev.
					fmt.Fprintf(os.Stderr, "meshload: churn transaction: HTTP %d: %s\n", status, body)
					continue
				}
				prev = fresh
				txns++
			}
		}()
	} else {
		churnDone <- 0
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			buf := new(bytes.Buffer)
			for range tickets {
				select {
				case <-stop:
					return
				default:
				}
				req := routeRequest{
					Src:       coord{X: rng.Intn(width), Y: rng.Intn(height)},
					Dst:       coord{X: rng.Intn(width), Y: rng.Intn(height)},
					Algorithm: *algo,
					NoOracle:  !*oracle,
				}
				tenant := "default"
				if *tenants > 0 {
					tenant = fmt.Sprintf("t%d", rng.Intn(*tenants))
				}
				buf.Reset()
				_ = json.NewEncoder(buf).Encode(req)
				payload := append([]byte(nil), buf.Bytes()...)
				// One logical request: a 429 is retried with backoff (floored
				// at the server's Retry-After hint) up to -retries times; the
				// final attempt's outcome and latency are what get recorded.
				for attempt := 0; ; attempt++ {
					hreq, _ := http.NewRequest(http.MethodPost, routeURL, bytes.NewReader(payload))
					hreq.Header.Set("Content-Type", "application/json")
					if *tenants > 0 {
						hreq.Header.Set("X-Tenant", tenant)
					}
					t0 := time.Now()
					resp, err := client.Do(hreq)
					lat := time.Since(t0)
					sent.Add(1)
					if err != nil {
						t.record("TRANSPORT", lat, false, true)
						break
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						t.record("", lat, true, false)
						break
					}
					var eb errorBody
					if json.Unmarshal(body, &eb) != nil || eb.Error.Code == "" {
						t.record(fmt.Sprintf("UNDECODABLE_%d", resp.StatusCode), lat, false, true)
						break
					}
					code := eb.Error.Code
					if code == "RESOURCE_EXHAUSTED" && attempt < *retries {
						wait := backoffFor(*backoffBase, attempt, retryHint(eb, resp), rng)
						t.recordRetry(tenant, wait)
						select {
						case <-stop:
							return
						case <-time.After(wait):
						}
						continue
					}
					if code == "RESOURCE_EXHAUSTED" {
						t.record429(tenant)
					}
					t.record(code, lat, false, classifyLeak(code, *chaos))
					break
				}
			}
		}(w)
	}
	wg.Wait()
	halt()
	elapsed := time.Since(start)
	txns := <-churnDone
	if replayable := countReplayable(replay); replayable > 0 {
		// Distinguish "ran out of request budget" (the loop never reached
		// the tail) from "the server rejected some records" — the advice
		// differs.
		attempted := int(replayAttempted.Load())
		if attempted < replayable {
			fmt.Fprintf(os.Stderr,
				"meshload: warning: replay stopped early: %d of %d recorded transactions attempted (raise -requests/-duration or lower -churn)\n",
				attempted, replayable)
		}
		if txns < attempted {
			fmt.Fprintf(os.Stderr,
				"meshload: warning: %d of %d attempted replay transactions were rejected by the server (see errors above)\n",
				attempted-txns, attempted)
		}
	}

	if !*keep {
		if req, err := http.NewRequest(http.MethodDelete, base+"/v1/meshes/"+*meshName, nil); err == nil {
			if resp, err := client.Do(req); err == nil {
				drainBody(resp)
			}
		}
	}

	// Summary.
	total := len(t.latencies)
	fmt.Printf("meshload: %d requests in %v (%.0f req/s, %d workers", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), *workers)
	if *rate > 0 {
		fmt.Printf(", open loop @ %.0f req/s", *rate)
	}
	fmt.Printf(")\n")
	sort.Slice(t.latencies, func(i, j int) bool { return t.latencies[i] < t.latencies[j] })
	if total > 0 {
		pct := func(p float64) time.Duration {
			i := int(p * float64(total-1))
			return t.latencies[i]
		}
		fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), t.latencies[total-1].Round(time.Microsecond))
	}
	fmt.Printf("outcomes: %d delivered", t.ok)
	codes := make([]string, 0, len(t.byCode))
	for code := range t.byCode {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Printf(", %d %s", t.byCode[code], code)
	}
	fmt.Printf("; %d fault transactions mid-run\n", txns)
	if t.retries > 0 || len(t.tenant429) > 0 {
		fmt.Printf("overload: %d retried 429s, %v total backoff", t.retries, t.backoff.Round(time.Millisecond))
		names := make([]string, 0, len(t.tenant429))
		for name := range t.tenant429 {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if i == 0 {
				fmt.Printf("; 429s by tenant:")
			}
			fmt.Printf(" %s=%d", name, t.tenant429[name])
		}
		fmt.Printf("\n")
	}
	if t.leaked > 0 {
		fmt.Fprintf(os.Stderr, "meshload: FAIL: %d responses outside the documented taxonomy (transport/undecodable/off-taxonomy codes)\n", t.leaked)
		os.Exit(1)
	}
	if n := t.byCode["RESOURCE_EXHAUSTED"]; n > 0 && !*chaos {
		fmt.Fprintf(os.Stderr, "meshload: FAIL: %d requests still RESOURCE_EXHAUSTED after %d retries (server under-provisioned for this load; use -chaos if overload is the point)\n", n, *retries)
		os.Exit(1)
	}
	if t.ok == 0 {
		fmt.Fprintln(os.Stderr, "meshload: FAIL: no request delivered")
		os.Exit(1)
	}
}

// countReplayable counts the records of a recording that have a wire
// form (empty-delta commits are skipped by the replayer).
func countReplayable(recs []journal.Record) int {
	n := 0
	for _, rec := range recs {
		if len(rec.Adds)+len(rec.Repairs) > 0 {
			n++
		}
	}
	return n
}

// getFaults fetches the mesh's current fault list (the wire FaultList).
func getFaults(client *http.Client, url string) ([]coord, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var list struct {
		Faults []coord `json:"faults"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		return nil, fmt.Errorf("decode fault list: %v", err)
	}
	return list.Faults, nil
}

// postRetry429 posts v, retrying 429 responses with jittered exponential
// backoff (floored at the body's retry_after_seconds hint) up to retries
// times; any other status returns immediately. stop (may be nil) aborts
// a pending backoff.
func postRetry429(client *http.Client, url string, v any, retries int, base time.Duration, rng *rand.Rand, stop <-chan struct{}) (int, string) {
	for attempt := 0; ; attempt++ {
		status, body := post(client, url, v)
		if status != http.StatusTooManyRequests || attempt >= retries {
			return status, body
		}
		var eb errorBody
		var hint time.Duration
		if json.Unmarshal([]byte(body), &eb) == nil {
			hint = time.Duration(eb.Error.RetryAfterSeconds * float64(time.Second))
		}
		wait := backoffFor(base, attempt, hint, rng)
		select {
		case <-stop:
			return status, body
		case <-time.After(wait):
		}
	}
}

// post sends one JSON POST and returns the status and body.
func post(client *http.Client, url string, v any) (int, string) {
	buf, _ := json.Marshal(v)
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err.Error()
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, strings.TrimSpace(string(body))
}

// drainBody discards and closes a response body so the connection can be
// reused.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
