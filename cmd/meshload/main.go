// Command meshload is an open-loop load generator for meshd. It creates
// (or recreates) a mesh, injects an initial fault configuration, fires
// route requests from a worker pool — at a fixed arrival rate or
// closed-loop — and optionally churns the fault configuration with
// atomic transactions mid-run, the serving regime the engine's snapshot
// architecture is built for. It reports throughput, latency percentiles,
// and a per-wire-code response tally, and exits non-zero when any
// response leaks outside the documented taxonomy (5xx, transport
// failures, unknown codes) — which makes it the CI smoke gate.
//
// Usage:
//
//	meshload -addr 127.0.0.1:8080 [-mesh load] [-n 32] [-faults 60] \
//	         [-seed 1] [-requests 1000] [-duration 0] [-rate 0] \
//	         [-workers 16] [-oracle] [-algo rb2] \
//	         [-churn 0] [-churn-faults -1] [-keep]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// wire mirrors of the internal/server request/response bodies (meshload
// speaks the public wire protocol only, like any external client).
type coord struct {
	X int `json:"x"`
	Y int `json:"y"`
}

type routeRequest struct {
	Src       coord  `json:"src"`
	Dst       coord  `json:"dst"`
	Algorithm string `json:"algorithm,omitempty"`
	NoOracle  bool   `json:"no_oracle,omitempty"`
}

type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorBody struct {
	Error wireError `json:"error"`
}

// tally accumulates response outcomes across workers.
type tally struct {
	mu        sync.Mutex
	byCode    map[string]int
	latencies []time.Duration
	ok        int
	leaked    int // 5xx, transport errors, undecodable bodies
}

func (t *tally) record(code string, latency time.Duration, ok, leak bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.latencies = append(t.latencies, latency)
	if ok {
		t.ok++
	} else {
		t.byCode[code]++
	}
	if leak {
		t.leaked++
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "meshd address (host:port or http URL)")
	meshName := flag.String("mesh", "load", "mesh name to create and drive")
	n := flag.Int("n", 32, "mesh side length")
	faults := flag.Int("faults", 60, "initial random faults")
	seed := flag.Int64("seed", 1, "fault and endpoint seed")
	requests := flag.Int("requests", 1000, "total requests (0 = until -duration)")
	duration := flag.Duration("duration", 0, "run length (0 = until -requests)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	workers := flag.Int("workers", 16, "concurrent request workers")
	oracle := flag.Bool("oracle", false, "request BFS oracle reports (off = serving hot path)")
	algo := flag.String("algo", "rb2", "routing algorithm: ecube, rb1, rb2, rb3")
	churn := flag.Duration("churn", 0, "apply a fault transaction every interval (0 = off)")
	churnFaults := flag.Int("churn-faults", -1, "faults per churn transaction (-1 = same as -faults)")
	keep := flag.Bool("keep", false, "keep the mesh registered after the run")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if *requests <= 0 && *duration <= 0 {
		*requests = 1000
	}
	if *churnFaults < 0 {
		*churnFaults = *faults
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *workers * 2,
		MaxIdleConnsPerHost: *workers * 2,
	}}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "meshload: "+format+"\n", args...)
		os.Exit(1)
	}

	// (Re)create the target mesh and seed its fault configuration.
	del, err := http.NewRequest(http.MethodDelete, base+"/v1/meshes/"+*meshName, nil)
	if err != nil {
		fail("%v", err)
	}
	if resp, err := client.Do(del); err != nil {
		fail("cannot reach %s: %v", base, err)
	} else {
		drainBody(resp)
	}
	status, body := post(client, base+"/v1/meshes",
		map[string]any{"name": *meshName, "width": *n, "height": *n})
	if status != http.StatusCreated {
		fail("create mesh: HTTP %d: %s", status, body)
	}
	status, body = post(client, base+"/v1/meshes/"+*meshName+"/faults",
		map[string]any{"ops": []map[string]any{{"op": "inject_random", "count": *faults, "seed": *seed}}})
	if status != http.StatusOK {
		fail("inject faults: HTTP %d: %s", status, body)
	}

	routeURL := base + "/v1/meshes/" + *meshName + "/route"
	t := &tally{byCode: make(map[string]int)}
	var sent atomic.Int64

	// Open loop: arrivals tick at -rate into a deep buffer so a slow
	// server grows the queue instead of slowing the arrival process.
	// Closed loop (-rate 0): workers fire as fast as responses return.
	tickets := make(chan struct{}, 1<<16)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	go func() {
		defer close(tickets)
		emitted := 0
		var tick <-chan time.Time
		if *rate > 0 {
			ticker := time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer ticker.Stop()
			tick = ticker.C
		}
		for {
			if *requests > 0 && emitted >= *requests {
				return
			}
			if tick != nil {
				select {
				case <-tick:
				case <-stop:
					return
				}
			}
			select {
			case tickets <- struct{}{}:
				emitted++
			case <-stop:
				return
			}
		}
	}()
	if *duration > 0 {
		time.AfterFunc(*duration, halt)
	}

	// Fault churn: transactions land mid-run, forcing snapshot
	// publications underneath the in-flight request stream.
	churnDone := make(chan int, 1)
	if *churn > 0 {
		go func() {
			txns := 0
			ticker := time.NewTicker(*churn)
			defer ticker.Stop()
			defer func() { churnDone <- txns }()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				status, body := post(client, base+"/v1/meshes/"+*meshName+"/faults",
					map[string]any{"ops": []map[string]any{{"op": "inject_random", "count": *churnFaults, "seed": *seed + i}}})
				if status != http.StatusOK {
					fmt.Fprintf(os.Stderr, "meshload: churn transaction: HTTP %d: %s\n", status, body)
					continue
				}
				txns++
			}
		}()
	} else {
		churnDone <- 0
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			buf := new(bytes.Buffer)
			for range tickets {
				select {
				case <-stop:
					return
				default:
				}
				req := routeRequest{
					Src:       coord{X: rng.Intn(*n), Y: rng.Intn(*n)},
					Dst:       coord{X: rng.Intn(*n), Y: rng.Intn(*n)},
					Algorithm: *algo,
					NoOracle:  !*oracle,
				}
				buf.Reset()
				_ = json.NewEncoder(buf).Encode(req)
				t0 := time.Now()
				resp, err := client.Post(routeURL, "application/json", bytes.NewReader(buf.Bytes()))
				lat := time.Since(t0)
				sent.Add(1)
				if err != nil {
					t.record("TRANSPORT", lat, false, true)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					t.record("", lat, true, false)
				case resp.StatusCode >= 500:
					t.record(fmt.Sprintf("HTTP_%d", resp.StatusCode), lat, false, true)
				default:
					var eb errorBody
					if json.Unmarshal(body, &eb) != nil || eb.Error.Code == "" {
						t.record(fmt.Sprintf("UNDECODABLE_%d", resp.StatusCode), lat, false, true)
					} else {
						t.record(eb.Error.Code, lat, false, false)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	halt()
	elapsed := time.Since(start)
	txns := <-churnDone

	if !*keep {
		if req, err := http.NewRequest(http.MethodDelete, base+"/v1/meshes/"+*meshName, nil); err == nil {
			if resp, err := client.Do(req); err == nil {
				drainBody(resp)
			}
		}
	}

	// Summary.
	total := len(t.latencies)
	fmt.Printf("meshload: %d requests in %v (%.0f req/s, %d workers", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), *workers)
	if *rate > 0 {
		fmt.Printf(", open loop @ %.0f req/s", *rate)
	}
	fmt.Printf(")\n")
	sort.Slice(t.latencies, func(i, j int) bool { return t.latencies[i] < t.latencies[j] })
	if total > 0 {
		pct := func(p float64) time.Duration {
			i := int(p * float64(total-1))
			return t.latencies[i]
		}
		fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), t.latencies[total-1].Round(time.Microsecond))
	}
	fmt.Printf("outcomes: %d delivered", t.ok)
	codes := make([]string, 0, len(t.byCode))
	for code := range t.byCode {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Printf(", %d %s", t.byCode[code], code)
	}
	fmt.Printf("; %d fault transactions mid-run\n", txns)
	if t.leaked > 0 {
		fmt.Fprintf(os.Stderr, "meshload: FAIL: %d responses outside the documented taxonomy (5xx/transport/undecodable)\n", t.leaked)
		os.Exit(1)
	}
	if t.ok == 0 {
		fmt.Fprintln(os.Stderr, "meshload: FAIL: no request delivered")
		os.Exit(1)
	}
}

// post sends one JSON POST and returns the status and body.
func post(client *http.Client, url string, v any) (int, string) {
	buf, _ := json.Marshal(v)
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err.Error()
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, strings.TrimSpace(string(body))
}

// drainBody discards and closes a response body so the connection can be
// reused.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
