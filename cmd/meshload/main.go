// Command meshload is an open-loop load generator for meshd. It creates
// (or recreates) a mesh, injects an initial fault configuration, fires
// route requests from a worker pool — at a fixed arrival rate or
// closed-loop — and optionally churns the fault configuration mid-run,
// the serving regime the engine's snapshot architecture is built for.
// Each churn tick is one atomic transaction that repairs the previous
// rotation's faults and adds a fresh random set, so the steady-state
// fault count stays at -churn-faults for the whole run (and each commit
// is a bounded delta, exercising the engine's incremental rebuild). It reports throughput, latency percentiles,
// and a per-wire-code response tally, and exits non-zero when any
// response leaks outside the documented taxonomy (5xx, transport
// failures, unknown codes) — which makes it the CI smoke gate.
//
// With -journal, the churn source is a recorded transaction log instead
// of random injection: the target mesh is created with the recording's
// dimensions and checkpoint fault set, and every journaled transaction
// is re-applied (as an atomic add/repair POST) in its original order —
// so state recovered from a meshd -data-dir can be load-tested against
// the exact fault history of the original run.
//
// Overload behavior: 429 RESOURCE_EXHAUSTED responses are retried up to
// -retries times with exponential backoff and jitter, never backing off
// less than the server's Retry-After hint. -tenants spreads requests
// over N synthetic tenant identities (X-Tenant: t0..tN-1) so per-tenant
// admission control can be exercised; the summary tallies retries, total
// backoff time, and 429s per tenant. A non-chaos run that still ends
// with RESOURCE_EXHAUSTED outcomes after retrying exits non-zero — an
// adequately provisioned server must absorb the offered load.
//
// -chaos is the fault-injection assertion mode (pair with meshd -fail):
// STORAGE commit refusals and residual 429s are expected there, and the
// run instead asserts the taxonomy NEVER leaks — every response decodes
// to a documented wire code — while routes keep being delivered.
//
// -cluster drives a replicated meshd cluster instead of a single node:
// route reads are sprayed uniformly across every listed node (leader and
// read-only followers alike), while mutations start at the consistent-
// hash placement target for the mesh name and transparently follow
// NOT_LEADER redirects — the refusal body carries the leader address —
// so placement misses cost one extra round-trip instead of aborting the
// run. Before firing traffic, the run waits until every node serves the
// mesh at (or past) the seeded snapshot version, so follower reads
// never race the initial replication.
//
// Usage:
//
//	meshload -addr 127.0.0.1:8080 [-cluster host:port,host:port,...] \
//	         [-mesh load] [-n 32] [-faults 60] \
//	         [-seed 1] [-requests 1000] [-duration 0] [-rate 0] \
//	         [-workers 16] [-oracle] [-algo rb2] \
//	         [-churn 0] [-churn-faults -1] [-journal dir] [-keep] \
//	         [-tenants 0] [-retries 3] [-backoff 50ms] [-chaos]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// wire mirrors of the internal/server request/response bodies (meshload
// speaks the public wire protocol only, like any external client).
type coord struct {
	X int `json:"x"`
	Y int `json:"y"`
}

type routeRequest struct {
	Src       coord  `json:"src"`
	Dst       coord  `json:"dst"`
	Algorithm string `json:"algorithm,omitempty"`
	NoOracle  bool   `json:"no_oracle,omitempty"`
}

type wireError struct {
	Code              string  `json:"code"`
	Message           string  `json:"message"`
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
	Leader            string  `json:"leader"`
}

type errorBody struct {
	Error wireError `json:"error"`
}

// knownCodes is the documented wire taxonomy; anything else in a
// response is a leak.
var knownCodes = map[string]bool{
	"OUTSIDE_MESH": true, "FAULTY_ENDPOINT": true, "UNREACHABLE": true,
	"ABORTED": true, "CANCELED": true, "INVALID_FAULT_COUNT": true,
	"NOT_ADJACENT": true, "WATCH_CLOSED": true, "RESOURCE_EXHAUSTED": true,
	"BAD_REQUEST": true, "MESH_NOT_FOUND": true, "MESH_EXISTS": true,
	"REGISTRY_FULL": true, "INTERNAL": true, "STORAGE": true,
	"NOT_LEADER": true,
}

// tally accumulates response outcomes across workers.
type tally struct {
	mu        sync.Mutex
	byCode    map[string]int
	latencies []time.Duration
	ok        int
	leaked    int      // transport errors, undecodable bodies, off-taxonomy codes
	leakIDs   []string // X-Request-Ids of leaked responses (capped) — grep these in the server's access logs
	retries   int      // 429s retried after backoff
	backoff   time.Duration
	tenant429 map[string]int
}

func (t *tally) record(code, reqID string, latency time.Duration, ok, leak bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.latencies = append(t.latencies, latency)
	if ok {
		t.ok++
	} else {
		t.byCode[code]++
	}
	if leak {
		t.leaked++
		if len(t.leakIDs) < 16 {
			t.leakIDs = append(t.leakIDs, reqID+" ("+code+")")
		}
	}
}

// recordRetry tallies one backed-off 429 retry.
func (t *tally) recordRetry(tenant string, wait time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retries++
	t.backoff += wait
	t.tenant429[tenant]++
}

// record429 tallies a 429 that was NOT retried (budget exhausted or
// retries disabled) — it lands in byCode via record; this only feeds the
// per-tenant breakdown.
func (t *tally) record429(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tenant429[tenant]++
}

// classifyLeak decides whether a decoded non-2xx outcome is outside the
// documented taxonomy. INTERNAL is always a leak (a served request must
// never produce it); STORAGE is a leak unless the run injects storage
// faults on purpose (-chaos).
func classifyLeak(code string, chaos bool) bool {
	switch {
	case !knownCodes[code]:
		return true
	case code == "INTERNAL":
		return true
	case code == "STORAGE":
		return !chaos
	}
	return false
}

// backoffFor computes the wait before retry #attempt (0-based) of a 429:
// exponential from base with 0.5-1.5x jitter, floored at the server's
// Retry-After hint.
func backoffFor(base time.Duration, attempt int, hint time.Duration, rng *rand.Rand) time.Duration {
	exp := base << min(attempt, 6)
	wait := time.Duration(float64(exp) * (0.5 + rng.Float64()))
	return max(wait, hint)
}

// retryHint extracts the server's backoff hint: the JSON field has
// sub-second precision, the Retry-After header is the whole-second
// fallback.
func retryHint(eb errorBody, resp *http.Response) time.Duration {
	if eb.Error.RetryAfterSeconds > 0 {
		return time.Duration(eb.Error.RetryAfterSeconds * float64(time.Second))
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "meshd address (host:port or http URL)")
	clusterSpec := flag.String("cluster", "", "comma-separated meshd cluster nodes (or @file): reads spray every node, mutations go to the placement target and follow NOT_LEADER redirects (overrides -addr)")
	meshName := flag.String("mesh", "load", "mesh name to create and drive")
	n := flag.Int("n", 32, "mesh side length")
	faults := flag.Int("faults", 60, "initial random faults")
	seed := flag.Int64("seed", 1, "fault and endpoint seed")
	requests := flag.Int("requests", 1000, "total requests (0 = until -duration)")
	duration := flag.Duration("duration", 0, "run length (0 = until -requests)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	workers := flag.Int("workers", 16, "concurrent request workers")
	oracle := flag.Bool("oracle", false, "request BFS oracle reports (off = serving hot path)")
	algo := flag.String("algo", "rb2", "routing algorithm: ecube, rb1, rb2, rb3")
	churn := flag.Duration("churn", 0, "rotate the fault configuration every interval (0 = off; with -journal, 0 = replay back-to-back)")
	churnFaults := flag.Int("churn-faults", -1, "steady-state fault count under churn (-1 = same as -faults)")
	journalDir := flag.String("journal", "", "replay this recorded journal dir (a meshd -data-dir mesh subdirectory) as the churn source")
	keep := flag.Bool("keep", false, "keep the mesh registered after the run")
	tenants := flag.Int("tenants", 0, "spread requests over N synthetic tenants via X-Tenant (0 = no header)")
	retries := flag.Int("retries", 3, "retry a 429 this many times with backoff before recording it")
	backoffBase := flag.Duration("backoff", 50*time.Millisecond, "exponential backoff base for 429 retries (jittered, floored at Retry-After)")
	chaos := flag.Bool("chaos", false, "fault-injection mode: tolerate STORAGE/429 outcomes but assert the taxonomy never leaks")
	flag.Parse()

	if *requests <= 0 && *duration <= 0 {
		*requests = 1000
	}
	if *churnFaults < 0 {
		*churnFaults = *faults
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *workers * 2,
		MaxIdleConnsPerHost: *workers * 2,
	}}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "meshload: "+format+"\n", args...)
		os.Exit(1)
	}

	// Resolve the targets: single-node runs read and write -addr; cluster
	// runs spray reads across every node and start mutations at the
	// consistent-hash placement target (NOT_LEADER redirects correct any
	// placement miss at the first mutation).
	readBases := []string{normalizeBase(*addr)}
	mt := &mutTarget{base: readBases[0]}
	if *clusterSpec != "" {
		pl, err := cluster.ParsePlacement(*clusterSpec)
		if err != nil {
			fail("-cluster: %v", err)
		}
		nodes := pl.Nodes()
		readBases = make([]string, len(nodes))
		for i, n := range nodes {
			readBases[i] = normalizeBase(n)
		}
		mt.set(normalizeBase(pl.Node(*meshName)))
		fmt.Printf("meshload: cluster of %d nodes; placement target for %q: %s\n", len(nodes), *meshName, mt.get())
	}

	// With -journal, the recording dictates geometry, the initial fault
	// set, and the churn transactions.
	width, height := *n, *n
	var replay []journal.Record
	var initial []map[string]any
	if *journalDir != "" {
		base, recs, err := journal.ReadBase(*journalDir)
		if err != nil {
			fail("read journal %s: %v", *journalDir, err)
		}
		width, height = base.Width, base.Height
		replay = recs
		for _, c := range base.Faults {
			initial = append(initial, map[string]any{"op": "add", "at": map[string]any{"x": c.X, "y": c.Y}})
		}
		fmt.Printf("meshload: replaying %s: %dx%d mesh, %d checkpoint faults, %d recorded transactions\n",
			*journalDir, width, height, len(base.Faults), len(recs))
	}

	// (Re)create the target mesh and seed its fault configuration. All
	// mutations go through doMutation, which follows NOT_LEADER
	// redirects and retries 429s.
	seedRng := rand.New(rand.NewSource(*seed))
	if status, _, err := doMutation(client, mt, http.MethodDelete, "/v1/meshes/"+*meshName, nil, *retries, *backoffBase, seedRng, nil); err != nil {
		fail("cannot reach %s: %v", mt.get(), err)
	} else if status != http.StatusNoContent && status != http.StatusNotFound {
		fail("delete mesh: HTTP %d", status)
	}
	status, body, err := doMutation(client, mt, http.MethodPost, "/v1/meshes",
		map[string]any{"name": *meshName, "width": width, "height": height}, *retries, *backoffBase, seedRng, nil)
	if err != nil {
		fail("create mesh: %v", err)
	}
	if status != http.StatusCreated {
		fail("create mesh: HTTP %d: %s", status, body)
	}
	if *journalDir == "" {
		initial = []map[string]any{{"op": "inject_random", "count": *faults, "seed": *seed}}
	}
	seededVersion := uint64(1) // creation publishes the initial snapshot
	if len(initial) > 0 {
		status, body, err = doMutation(client, mt, http.MethodPost, "/v1/meshes/"+*meshName+"/faults",
			map[string]any{"ops": initial}, *retries, *backoffBase, seedRng, nil)
		if err != nil {
			fail("seed faults: %v", err)
		}
		if status != http.StatusOK {
			fail("seed faults: HTTP %d: %s", status, body)
		}
		var seeded struct {
			SnapshotVersion uint64 `json:"snapshot_version"`
		}
		if json.Unmarshal([]byte(body), &seeded) == nil && seeded.SnapshotVersion > 0 {
			seededVersion = seeded.SnapshotVersion
		}
	}

	// In a cluster, wait until every node serves the mesh at (or past)
	// the seeded version before spraying reads at it: followers that are
	// still tailing the create would answer MESH_NOT_FOUND.
	if len(readBases) > 1 {
		if err := waitReplicated(client, readBases, *meshName, seededVersion, 30*time.Second); err != nil {
			fail("%v", err)
		}
		fmt.Printf("meshload: all %d nodes serve %q at v%d or later\n", len(readBases), *meshName, seededVersion)
	}
	routePath := "/v1/meshes/" + *meshName + "/route"
	t := &tally{byCode: make(map[string]int), tenant429: make(map[string]int)}
	var sent atomic.Int64
	var replayAttempted atomic.Int64

	// Open loop: arrivals tick at -rate into a deep buffer so a slow
	// server grows the queue instead of slowing the arrival process.
	// Closed loop (-rate 0): workers fire as fast as responses return.
	tickets := make(chan struct{}, 1<<16)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	go func() {
		defer close(tickets)
		emitted := 0
		var tick <-chan time.Time
		if *rate > 0 {
			ticker := time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer ticker.Stop()
			tick = ticker.C
		}
		for {
			if *requests > 0 && emitted >= *requests {
				return
			}
			if tick != nil {
				select {
				case <-tick:
				case <-stop:
					return
				}
			}
			select {
			case tickets <- struct{}{}:
				emitted++
			case <-stop:
				return
			}
		}
	}()
	if *duration > 0 {
		time.AfterFunc(*duration, halt)
	}

	// Fault churn: transactions land mid-run, forcing snapshot
	// publications underneath the in-flight request stream.
	churnDone := make(chan int, 1)
	if *journalDir != "" {
		// -journal owns the churn source even when the recording has no
		// post-checkpoint tail: falling through to random injection would
		// pollute the faithfully restored state.
		// Journal replay: re-apply the recorded history in order, paced
		// by -churn (0 = back-to-back). Each record becomes one atomic
		// add/repair transaction, exactly as the original run committed it.
		go func() {
			txns := 0
			defer func() { churnDone <- txns }()
			rng := rand.New(rand.NewSource(*seed * 31))
			var tick <-chan time.Time
			if *churn > 0 {
				ticker := time.NewTicker(*churn)
				defer ticker.Stop()
				tick = ticker.C
			}
			for _, rec := range replay {
				replayAttempted.Add(1)
				if tick != nil {
					select {
					case <-stop:
						return
					case <-tick:
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				var ops []map[string]any
				for _, c := range rec.Adds {
					ops = append(ops, map[string]any{"op": "add", "at": map[string]any{"x": c.X, "y": c.Y}})
				}
				for _, c := range rec.Repairs {
					ops = append(ops, map[string]any{"op": "repair", "at": map[string]any{"x": c.X, "y": c.Y}})
				}
				if len(ops) == 0 {
					replayAttempted.Add(-1)
					continue // an empty-delta commit has no wire form
				}
				status, body, err := doMutation(client, mt, http.MethodPost, "/v1/meshes/"+*meshName+"/faults",
					map[string]any{"ops": ops}, *retries, *backoffBase, rng, stop)
				if err != nil {
					fmt.Fprintf(os.Stderr, "meshload: replay transaction v%d: %v\n", rec.Version, err)
					continue
				}
				if status != http.StatusOK {
					if *chaos && strings.Contains(body, `"STORAGE"`) {
						fmt.Fprintf(os.Stderr, "meshload: replay stopped: journal degraded (STORAGE) at v%d\n", rec.Version)
						return
					}
					fmt.Fprintf(os.Stderr, "meshload: replay transaction v%d: HTTP %d: %s\n", rec.Version, status, body)
					continue
				}
				txns++
			}
		}()
	} else if *churn > 0 {
		if *churnFaults >= width*height {
			fail("-churn-faults %d would disable the whole %dx%d mesh", *churnFaults, width, height)
		}
		// Each tick commits ONE atomic transaction that repairs the
		// previous rotation's faults and adds a fresh random set, so the
		// steady-state fault count stays pinned at -churn-faults instead
		// of degrading the mesh over a long run. The seeded configuration
		// is fetched once up front to become the first rotation — churn
		// never stacks on top of the baseline.
		prev, err := getFaults(client, mt.get()+"/v1/meshes/"+*meshName+"/faults")
		if err != nil {
			fail("fetch seeded faults: %v", err)
		}
		go func() {
			txns := 0
			ticker := time.NewTicker(*churn)
			defer ticker.Stop()
			defer func() { churnDone <- txns }()
			rng := rand.New(rand.NewSource(*seed * 1000003))
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				fresh := make([]coord, 0, *churnFaults)
				seen := make(map[coord]bool, *churnFaults)
				for len(fresh) < *churnFaults {
					c := coord{X: rng.Intn(width), Y: rng.Intn(height)}
					if !seen[c] {
						seen[c] = true
						fresh = append(fresh, c)
					}
				}
				// Repairs first: a fresh coord colliding with an outgoing
				// one is repaired then re-added, netting to faulty.
				ops := make([]map[string]any, 0, len(prev)+len(fresh))
				for _, c := range prev {
					ops = append(ops, map[string]any{"op": "repair", "at": map[string]any{"x": c.X, "y": c.Y}})
				}
				for _, c := range fresh {
					ops = append(ops, map[string]any{"op": "add", "at": map[string]any{"x": c.X, "y": c.Y}})
				}
				status, body, err := doMutation(client, mt, http.MethodPost, "/v1/meshes/"+*meshName+"/faults",
					map[string]any{"ops": ops}, *retries, *backoffBase, rng, stop)
				if err != nil {
					fmt.Fprintf(os.Stderr, "meshload: churn transaction: %v\n", err)
					continue
				}
				if status != http.StatusOK {
					// A degraded journal refuses every further commit — stop
					// churning instead of spamming a warning per tick. In
					// -chaos runs that is the expected mid-run event.
					if strings.Contains(body, `"STORAGE"`) {
						fmt.Fprintf(os.Stderr, "meshload: churn stopped: journal degraded (STORAGE) after %d transactions\n", txns)
						return
					}
					// The transaction is atomic: nothing committed, so the
					// outgoing rotation is still published. Keep prev.
					fmt.Fprintf(os.Stderr, "meshload: churn transaction: HTTP %d: %s\n", status, body)
					continue
				}
				prev = fresh
				txns++
			}
		}()
	} else {
		churnDone <- 0
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			buf := new(bytes.Buffer)
			for range tickets {
				select {
				case <-stop:
					return
				default:
				}
				req := routeRequest{
					Src:       coord{X: rng.Intn(width), Y: rng.Intn(height)},
					Dst:       coord{X: rng.Intn(width), Y: rng.Intn(height)},
					Algorithm: *algo,
					NoOracle:  !*oracle,
				}
				tenant := "default"
				if *tenants > 0 {
					tenant = fmt.Sprintf("t%d", rng.Intn(*tenants))
				}
				buf.Reset()
				_ = json.NewEncoder(buf).Encode(req)
				payload := append([]byte(nil), buf.Bytes()...)
				// One logical request: a 429 is retried with backoff (floored
				// at the server's Retry-After hint) up to -retries times; the
				// final attempt's outcome and latency are what get recorded.
				// One X-Request-Id covers every attempt, so a leaked outcome
				// points straight at its server-side access-log records.
				// Reads spray uniformly across the cluster (a single-node
				// run has one target): followers serve the same snapshot
				// versions the leader published.
				target := readBases[rng.Intn(len(readBases))]
				reqID := telemetry.NewRequestID()
				for attempt := 0; ; attempt++ {
					hreq, _ := http.NewRequest(http.MethodPost, target+routePath, bytes.NewReader(payload))
					hreq.Header.Set("Content-Type", "application/json")
					hreq.Header.Set("X-Request-Id", reqID)
					if *tenants > 0 {
						hreq.Header.Set("X-Tenant", tenant)
					}
					t0 := time.Now()
					resp, err := client.Do(hreq)
					lat := time.Since(t0)
					sent.Add(1)
					if err != nil {
						t.record("TRANSPORT", reqID, lat, false, true)
						break
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						t.record("", reqID, lat, true, false)
						break
					}
					var eb errorBody
					if json.Unmarshal(body, &eb) != nil || eb.Error.Code == "" {
						t.record(fmt.Sprintf("UNDECODABLE_%d", resp.StatusCode), reqID, lat, false, true)
						break
					}
					code := eb.Error.Code
					if code == "RESOURCE_EXHAUSTED" && attempt < *retries {
						wait := backoffFor(*backoffBase, attempt, retryHint(eb, resp), rng)
						t.recordRetry(tenant, wait)
						select {
						case <-stop:
							return
						case <-time.After(wait):
						}
						continue
					}
					if code == "RESOURCE_EXHAUSTED" {
						t.record429(tenant)
					}
					t.record(code, reqID, lat, false, classifyLeak(code, *chaos))
					break
				}
			}
		}(w)
	}
	wg.Wait()
	halt()
	elapsed := time.Since(start)
	txns := <-churnDone
	if replayable := countReplayable(replay); replayable > 0 {
		// Distinguish "ran out of request budget" (the loop never reached
		// the tail) from "the server rejected some records" — the advice
		// differs.
		attempted := int(replayAttempted.Load())
		if attempted < replayable {
			fmt.Fprintf(os.Stderr,
				"meshload: warning: replay stopped early: %d of %d recorded transactions attempted (raise -requests/-duration or lower -churn)\n",
				attempted, replayable)
		}
		if txns < attempted {
			fmt.Fprintf(os.Stderr,
				"meshload: warning: %d of %d attempted replay transactions were rejected by the server (see errors above)\n",
				attempted-txns, attempted)
		}
	}

	if !*keep {
		_, _, _ = doMutation(client, mt, http.MethodDelete, "/v1/meshes/"+*meshName, nil,
			*retries, *backoffBase, rand.New(rand.NewSource(*seed*17)), nil)
	}

	// Summary.
	total := len(t.latencies)
	fmt.Printf("meshload: %d requests in %v (%.0f req/s, %d workers", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), *workers)
	if *rate > 0 {
		fmt.Printf(", open loop @ %.0f req/s", *rate)
	}
	fmt.Printf(")\n")
	sort.Slice(t.latencies, func(i, j int) bool { return t.latencies[i] < t.latencies[j] })
	if total > 0 {
		pct := func(p float64) time.Duration {
			i := int(p * float64(total-1))
			return t.latencies[i]
		}
		fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), t.latencies[total-1].Round(time.Microsecond))
		printHistogram(t.latencies)
	}
	fmt.Printf("outcomes: %d delivered", t.ok)
	codes := make([]string, 0, len(t.byCode))
	for code := range t.byCode {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Printf(", %d %s", t.byCode[code], code)
	}
	fmt.Printf("; %d fault transactions mid-run\n", txns)
	if t.retries > 0 || len(t.tenant429) > 0 {
		fmt.Printf("overload: %d retried 429s, %v total backoff", t.retries, t.backoff.Round(time.Millisecond))
		names := make([]string, 0, len(t.tenant429))
		for name := range t.tenant429 {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if i == 0 {
				fmt.Printf("; 429s by tenant:")
			}
			fmt.Printf(" %s=%d", name, t.tenant429[name])
		}
		fmt.Printf("\n")
	}
	if t.leaked > 0 {
		fmt.Fprintf(os.Stderr, "meshload: FAIL: %d responses outside the documented taxonomy (transport/undecodable/off-taxonomy codes)\n", t.leaked)
		fmt.Fprintf(os.Stderr, "meshload: leaked request IDs (grep these in the server's access logs): %s\n",
			strings.Join(t.leakIDs, ", "))
		os.Exit(1)
	}
	if n := t.byCode["RESOURCE_EXHAUSTED"]; n > 0 && !*chaos {
		fmt.Fprintf(os.Stderr, "meshload: FAIL: %d requests still RESOURCE_EXHAUSTED after %d retries (server under-provisioned for this load; use -chaos if overload is the point)\n", n, *retries)
		os.Exit(1)
	}
	if t.ok == 0 {
		fmt.Fprintln(os.Stderr, "meshload: FAIL: no request delivered")
		os.Exit(1)
	}
}

// printHistogram renders the end-to-end latency distribution in exactly
// the bucket boundaries of the server's meshd_walk_latency_seconds
// histogram (telemetry.LatencyBounds), so a meshload run and a /metrics
// scrape line up bucket-for-bucket — the client-side histogram is the
// walk histogram plus network, queueing, and encode overhead.
func printHistogram(sorted []time.Duration) {
	bounds := telemetry.LatencyBounds
	fmt.Printf("histogram (meshd_walk_latency_seconds buckets):\n")
	prev := 0
	for _, b := range bounds {
		le := time.Duration(b * float64(time.Second))
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > le })
		if i > prev {
			fmt.Printf("  le=%-8v %7d  (cum %d)\n", le, i-prev, i)
		}
		prev = i
	}
	if n := len(sorted) - prev; n > 0 {
		fmt.Printf("  le=+Inf    %7d  (cum %d)\n", n, len(sorted))
	}
}

// countReplayable counts the records of a recording that have a wire
// form (empty-delta commits are skipped by the replayer).
func countReplayable(recs []journal.Record) int {
	n := 0
	for _, rec := range recs {
		if len(rec.Adds)+len(rec.Repairs) > 0 {
			n++
		}
	}
	return n
}

// getFaults fetches the mesh's current fault list (the wire FaultList).
func getFaults(client *http.Client, url string) ([]coord, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var list struct {
		Faults []coord `json:"faults"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		return nil, fmt.Errorf("decode fault list: %v", err)
	}
	return list.Faults, nil
}

// normalizeBase turns a host:port or URL into a scheme-prefixed base
// with no trailing slash.
func normalizeBase(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// mutTarget is the shared, mutable mutation target: it starts at the
// -addr node (or the -cluster placement target) and is rewritten by
// every NOT_LEADER redirect, so all mutation paths — seeding, churn,
// replay, cleanup — converge on the discovered leader after one miss.
type mutTarget struct {
	mu   sync.Mutex
	base string
}

func (m *mutTarget) get() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base
}

func (m *mutTarget) set(base string) {
	m.mu.Lock()
	m.base = base
	m.mu.Unlock()
}

// maxLeaderHops bounds NOT_LEADER redirect chasing: a healthy cluster
// resolves in one hop, so a longer chain means the membership config is
// circular or stale and the refusal should surface.
const maxLeaderHops = 3

// doMutation sends one mutation (method + optional JSON body) to the
// current mutation target, following NOT_LEADER redirects via the error
// body's leader hint (updating the shared target) and retrying 429
// responses with jittered exponential backoff floored at the
// retry_after_seconds hint. Any other status returns immediately; a
// transport failure is the error return. stop (may be nil) aborts a
// pending backoff. One X-Request-Id spans every hop and retry of the
// logical mutation, so the redirecting follower and the leader log the
// same ID — grep it once, see the whole path.
func doMutation(client *http.Client, mt *mutTarget, method, path string, v any, retries int, base time.Duration, rng *rand.Rand, stop <-chan struct{}) (int, string, error) {
	reqID := telemetry.NewRequestID()
	hops, attempt := 0, 0
	for {
		var rd io.Reader
		if v != nil {
			buf, _ := json.Marshal(v)
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequest(method, mt.get()+path, rd)
		if err != nil {
			return 0, "", err
		}
		req.Header.Set("X-Request-Id", reqID)
		if v != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, "", err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		status, body := resp.StatusCode, strings.TrimSpace(string(raw))

		if status == http.StatusMisdirectedRequest && hops < maxLeaderHops {
			var eb errorBody
			if json.Unmarshal(raw, &eb) == nil && eb.Error.Code == "NOT_LEADER" && eb.Error.Leader != "" {
				mt.set(normalizeBase(eb.Error.Leader))
				hops++
				continue
			}
		}
		if status == http.StatusTooManyRequests && attempt < retries {
			var eb errorBody
			var hint time.Duration
			if json.Unmarshal(raw, &eb) == nil {
				hint = time.Duration(eb.Error.RetryAfterSeconds * float64(time.Second))
			}
			wait := backoffFor(base, attempt, hint, rng)
			attempt++
			select {
			case <-stop:
				return status, body, nil
			case <-time.After(wait):
			}
			continue
		}
		return status, body, nil
	}
}

// waitReplicated polls every node until it serves mesh at (or past)
// version, the signal that the initial create + seed replicated.
func waitReplicated(client *http.Client, bases []string, mesh string, version uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, b := range bases {
		for {
			var info struct {
				SnapshotVersion uint64 `json:"snapshot_version"`
			}
			resp, err := client.Get(b + "/v1/meshes/" + mesh)
			if err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK &&
					json.Unmarshal(body, &info) == nil && info.SnapshotVersion >= version {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("node %s did not replicate %q to v%d within %v", b, mesh, version, timeout)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}
