// Command meshsim is the free-form sweep driver: it routes many random
// pairs over many random fault configurations and reports per-algorithm
// delivery, optimality, and cost statistics, with every knob exposed.
//
// Routing runs on the concurrent engine (internal/engine): each trial
// publishes one immutable analysis snapshot and the sampled pairs stream
// through a worker pool sized by -workers. Interrupting (ctrl-C) cancels
// the in-flight batch promptly and prints the partial aggregates.
//
// Usage:
//
//	meshsim [-n 100] [-faults 1500] [-trials 5] [-pairs 50] [-seed 1]
//	        [-gen uniform|clustered|blocks] [-policy diagonal|xfirst|yfirst]
//	        [-workers 0] [-cpuprofile routing.pprof] [-memprofile mem.pprof]
//
// The profiling flags write pprof files covering the sweep (`go tool
// pprof` reads them) — the supported way to see where routing time and
// steady-state allocations go at any scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/routing"
	"repro/internal/spath"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 100, "mesh side length")
	nFaults := flag.Int("faults", 1500, "faults per configuration")
	trials := flag.Int("trials", 5, "random configurations")
	pairs := flag.Int("pairs", 50, "routed pairs per configuration")
	seed := flag.Int64("seed", 1, "base seed")
	genName := flag.String("gen", "uniform", "fault generator: uniform, clustered, blocks")
	policyName := flag.String("policy", "diagonal", "adaptive policy: diagonal, xfirst, yfirst")
	workers := flag.Int("workers", 0, "routing worker pool size (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	flag.Parse()

	// Validate flag values before starting any profile: os.Exit bypasses
	// the Stop/write defers and would leave a truncated profile behind.
	gens := map[string]fault.Generator{
		"uniform": fault.Uniform{}, "clustered": fault.Clustered{}, "blocks": fault.Blocks{},
	}
	gen, ok := gens[*genName]
	if !ok {
		fmt.Fprintf(os.Stderr, "meshsim: unknown generator %q\n", *genName)
		os.Exit(2)
	}
	policies := map[string]routing.Policy{
		"diagonal": routing.PolicyDiagonal, "xfirst": routing.PolicyXFirst, "yfirst": routing.PolicyYFirst,
	}
	policy, ok := policies[*policyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "meshsim: unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshsim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "meshsim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshsim: -memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle steady-state live objects before the snapshot
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "meshsim: -memprofile: %v\n", err)
		}
	}()

	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSignals()

	algos := []routing.Algo{routing.Ecube, routing.RB1, routing.RB2, routing.RB3}
	type agg struct {
		routed, delivered, shortest int
		hops, detours               stats.Accumulator
	}
	perAlgo := map[routing.Algo]*agg{}
	for _, al := range algos {
		perAlgo[al] = &agg{}
	}

	m := mesh.Square(*n)
	for trial := 0; trial < *trials; trial++ {
		r := rand.New(rand.NewSource(*seed + int64(trial)))
		f, ok := fault.GenerateConnected(gen, m, *nFaults, r, 25)
		if !ok {
			fmt.Fprintf(os.Stderr, "meshsim: trial %d: no connected configuration at %d faults; skipping\n", trial, *nFaults)
			continue
		}
		eng := engine.New(f, engine.Options{Routing: routing.Options{Policy: policy}})
		snap := eng.Snapshot()
		a := snap.Analysis()
		oracle := snap.Oracle() // per-trial BFS cache; pairs sharing endpoints reuse fields
		// Sample the trial's pairs sequentially (the RNG stream is part of
		// the reproducible configuration), then fan the routing out.
		var batch []engine.Pair
		var optimal []int32
		for p := 0; p < *pairs; p++ {
			for attempt := 0; attempt < 200; attempt++ {
				s := mesh.C(r.Intn(*n), r.Intn(*n))
				d := mesh.C(r.Intn(*n), r.Intn(*n))
				o := mesh.OrientFor(s, d)
				if s == d || !a.Grid(o).Safe(o.To(m, s)) || !a.Grid(o).Safe(o.To(m, d)) {
					continue
				}
				if dist := oracle.Dist(s, d); dist < spath.Infinite {
					batch = append(batch, engine.Pair{S: s, D: d})
					optimal = append(optimal, dist)
					break
				}
			}
		}
		for _, al := range algos {
			// Stream the batch: aggregate each outcome as a worker
			// completes it, no buffered result slice.
			for br := range eng.RouteBatchStream(ctx, al, batch, *workers) {
				ag := perAlgo[al]
				ag.routed++
				if br.Err != nil || !br.Res.Delivered {
					continue
				}
				ag.delivered++
				if int32(br.Res.Hops) == optimal[br.Index] {
					ag.shortest++
				}
				ag.hops.Add(float64(br.Res.Hops))
				ag.detours.Add(float64(br.Res.DetourHops))
			}
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "meshsim: interrupted; reporting partial aggregates")
			break
		}
	}

	fmt.Printf("meshsim: %dx%d mesh, %d faults (%s), %d trials x %d pairs, policy %s\n\n",
		*n, *n, *nFaults, *genName, *trials, *pairs, *policyName)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algo\trouted\tdelivered%\tshortest%\tavg hops\tavg detour hops")
	for _, al := range algos {
		ag := perAlgo[al]
		if ag.routed == 0 {
			fmt.Fprintf(w, "%v\t0\t-\t-\t-\t-\n", al)
			continue
		}
		fmt.Fprintf(w, "%v\t%d\t%.1f\t%.1f\t%.1f\t%.2f\n", al, ag.routed,
			100*float64(ag.delivered)/float64(ag.routed),
			100*float64(ag.shortest)/float64(ag.routed),
			ag.hops.Avg(), ag.detours.Avg())
	}
	w.Flush()
}
