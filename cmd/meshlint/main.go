// Command meshlint runs the repo's invariant analyzers (see
// internal/lint and ARCHITECTURE.md "Enforced invariants") over the
// whole module:
//
//	snapshotmut   no writes to published-snapshot state outside the
//	              build packages
//	hotpathalloc  no allocating constructs in //meshlint:hotpath
//	              functions
//	wirecode      the Err* sentinel / wire-code / HTTP-status taxonomy
//	              stays exhaustive
//	guardedby     //meshlint:guardedby fields accessed under their
//	              lock; publish/journal calls stay confined
//	ctxpoll       routing walk loops poll Options.Stop
//	fieldalign    (advisory) struct field order wastes padding
//
// Usage:
//
//	meshlint [./...]
//
// meshlint always analyzes the module enclosing the working directory;
// the optional ./... argument is accepted for familiarity. Exit status
// is 1 when any blocking (non-advisory) finding is reported.
//
// The tool is self-contained on the standard library, so `go run
// ./cmd/meshlint` needs no module downloads and the checked-in source
// is the pinned version — local runs and CI cannot drift.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	for _, arg := range os.Args[1:] {
		switch arg {
		case "./...", ".":
		default:
			fmt.Fprintf(os.Stderr, "usage: meshlint [./...]  (analyzes the enclosing module; got %q)\n", arg)
			os.Exit(2)
		}
	}
	prog, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := prog.Run(lint.Analyzers()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshlint: %v\n", err)
		os.Exit(2)
	}
	blocking := 0
	for _, d := range diags {
		tag := ""
		if d.Advisory {
			tag = " (advisory)"
		} else {
			blocking++
		}
		fmt.Printf("%s: [%s]%s %s\n", prog.Fset.Position(d.Pos), d.Analyzer, tag, d.Message)
	}
	if blocking > 0 {
		fmt.Fprintf(os.Stderr, "meshlint: %d blocking finding(s)\n", blocking)
		os.Exit(1)
	}
}
