// Command meshroute routes one packet across a randomly faulted mesh and
// prints the decision trace as an ASCII map, comparing the walked length
// against the BFS optimum. It drives the public API v1 facade: the fault
// configuration commits as one atomic transaction and the routing runs
// under an interruptible context with typed-error reporting.
//
// Usage:
//
//	meshroute [-n 30] [-faults 60] [-seed 1] [-algo rb2] \
//	          [-src x,y] [-dst x,y]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	meshroute "repro"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/viz"
)

func parseCoord(s string, def mesh.Coord) mesh.Coord {
	var x, y int
	if _, err := fmt.Sscanf(s, "%d,%d", &x, &y); err != nil {
		return def
	}
	return mesh.C(x, y)
}

func main() {
	n := flag.Int("n", 30, "mesh side length")
	faults := flag.Int("faults", 60, "number of random faults")
	seed := flag.Int64("seed", 1, "fault placement seed")
	algoName := flag.String("algo", "rb2", "algorithm: ecube, rb1, rb2, rb3")
	src := flag.String("src", "", "source as x,y (default 1,1)")
	dst := flag.String("dst", "", "destination as x,y (default n-2,n-2)")
	flag.Parse()

	algos := map[string]meshroute.Algorithm{
		"ecube": meshroute.Ecube, "rb1": meshroute.RB1, "rb2": meshroute.RB2, "rb3": meshroute.RB3,
	}
	algo, ok := algos[*algoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "meshroute: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSignals()

	net := meshroute.NewSquare(*n)
	// Draw a connected configuration and commit it as one transaction:
	// exactly one analysis publication however many faults land.
	m := mesh.Square(*n)
	f, connected := fault.GenerateConnected(fault.Uniform{}, m, *faults, rand.New(rand.NewSource(*seed)), 50)
	if !connected {
		fmt.Fprintln(os.Stderr, "meshroute: could not generate a connected configuration; lower -faults")
		os.Exit(1)
	}
	if err := net.Apply(func(tx *meshroute.Tx) error {
		for _, c := range f.Coords() {
			if err := tx.AddFault(c); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		fmt.Fprintf(os.Stderr, "meshroute: %v\n", err)
		os.Exit(1)
	}

	s := parseCoord(*src, mesh.C(1, 1))
	d := parseCoord(*dst, mesh.C(*n-2, *n-2))
	res, err := net.Route(ctx, meshroute.RouteRequest{Src: s, Dst: d}, meshroute.WithAlgorithm(algo))
	if err != nil {
		var abort *meshroute.ErrAborted
		switch {
		case errors.As(err, &abort):
			// Still render the partial decision trace — the abort case is
			// where the map matters most.
			fmt.Print(viz.NewMap(m).Labels(net.Analysis().Grid(mesh.NE)).Path(abort.Path).String())
			fmt.Printf("\nalgorithm   %v\nfaults      %d (seed %d)\nsource      %v\ndestination %v\n",
				algo, net.FaultCount(), *seed, s, d)
			fmt.Printf("result      UNDELIVERED (%s after %d hops)\n", abort.Reason, abort.Hops)
		case errors.Is(err, meshroute.ErrFaultyEndpoint):
			fmt.Fprintln(os.Stderr, "meshroute: an endpoint is faulty; pick -src/-dst or change -seed")
		case errors.Is(err, meshroute.ErrOutsideMesh):
			fmt.Fprintf(os.Stderr, "meshroute: endpoints %v -> %v outside the %dx%d mesh\n", s, d, *n, *n)
		case errors.Is(err, meshroute.ErrUnreachable):
			fmt.Fprintf(os.Stderr, "meshroute: %v is unreachable from %v in this configuration\n", d, s)
		case errors.Is(err, meshroute.ErrCanceled):
			fmt.Fprintln(os.Stderr, "meshroute: interrupted")
		default:
			fmt.Fprintf(os.Stderr, "meshroute: %v\n", err)
		}
		os.Exit(1)
	}

	v := viz.NewMap(m).Labels(net.Analysis().Grid(mesh.NE)).Path(res.Path)
	fmt.Print(v.String())
	st := net.Stats()
	fmt.Printf("\nalgorithm   %v\nfaults      %d (seed %d)\nsource      %v\ndestination %v\n",
		algo, st.PublishedFaults, *seed, s, d)
	fmt.Printf("hops        %d\noptimal     %d\nshortest    %v\nphases      %d\ndetour hops %d\n",
		res.Hops, res.Oracle.Optimal, res.Oracle.Shortest, res.Phases, res.DetourHops)
	fmt.Printf("manhattan   %v (Manhattan-distance path exists)\n", res.Oracle.ManhattanFeasible)
}
