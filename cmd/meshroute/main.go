// Command meshroute routes one packet across a randomly faulted mesh and
// prints the decision trace as an ASCII map, comparing the walked length
// against the BFS optimum.
//
// Usage:
//
//	meshroute [-n 30] [-faults 60] [-seed 1] [-algo rb2] \
//	          [-src x,y] [-dst x,y]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/routing"
	"repro/internal/spath"
	"repro/internal/viz"
)

func parseCoord(s string, def mesh.Coord) mesh.Coord {
	var x, y int
	if _, err := fmt.Sscanf(s, "%d,%d", &x, &y); err != nil {
		return def
	}
	return mesh.C(x, y)
}

func main() {
	n := flag.Int("n", 30, "mesh side length")
	faults := flag.Int("faults", 60, "number of random faults")
	seed := flag.Int64("seed", 1, "fault placement seed")
	algoName := flag.String("algo", "rb2", "algorithm: ecube, rb1, rb2, rb3")
	src := flag.String("src", "", "source as x,y (default 1,1)")
	dst := flag.String("dst", "", "destination as x,y (default n-2,n-2)")
	flag.Parse()

	algos := map[string]routing.Algo{
		"ecube": routing.Ecube, "rb1": routing.RB1, "rb2": routing.RB2, "rb3": routing.RB3,
	}
	algo, ok := algos[*algoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "meshroute: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	m := mesh.Square(*n)
	f, connected := fault.GenerateConnected(fault.Uniform{}, m, *faults, rand.New(rand.NewSource(*seed)), 50)
	if !connected {
		fmt.Fprintln(os.Stderr, "meshroute: could not generate a connected configuration; lower -faults")
		os.Exit(1)
	}
	s := parseCoord(*src, mesh.C(1, 1))
	d := parseCoord(*dst, mesh.C(*n-2, *n-2))
	if f.Faulty(s) || f.Faulty(d) {
		fmt.Fprintln(os.Stderr, "meshroute: an endpoint is faulty; pick -src/-dst or change -seed")
		os.Exit(1)
	}

	a := routing.NewAnalysis(f)
	res := routing.Route(a, algo, s, d, routing.Options{})
	optimal := spath.Distance(f, s, d)

	grid := a.Grid(mesh.OrientFor(s, d))
	_ = grid
	m2 := viz.NewMap(m).Labels(a.Grid(mesh.NE)).Path(res.Path)
	fmt.Print(m2.String())
	fmt.Printf("\nalgorithm   %v\nfaults      %d (seed %d)\nsource      %v\ndestination %v\n",
		algo, f.Count(), *seed, s, d)
	if !res.Delivered {
		fmt.Printf("result      UNDELIVERED (%s)\n", res.Abort)
		os.Exit(1)
	}
	fmt.Printf("hops        %d\noptimal     %d\nshortest    %v\nphases      %d\ndetour hops %d\n",
		res.Hops, optimal, int32(res.Hops) == optimal, res.Phases, res.DetourHops)
	fmt.Printf("manhattan   %v (Manhattan-distance path exists)\n", spath.ManhattanReachable(f, s, d))
}
