// Command meshd serves the meshroute engine over HTTP: a multi-mesh
// registry with shortest-path route serving, streaming NDJSON batches,
// atomic fault transactions, and serving metrics. See internal/server for
// the wire protocol and cmd/meshd/README.md for a curl walkthrough.
//
// Usage:
//
//	meshd [-addr 127.0.0.1:8080] [-addr-file path] [-drain 10s] \
//	      [-max-nodes N] [-max-meshes N] [-max-batch-pairs N] \
//	      [-oracle-bound N] \
//	      [-data-dir dir] [-fsync always|none|100ms] [-checkpoint-every N] \
//	      [-tenant-rate R] [-tenant-burst N] [-max-inflight N] \
//	      [-admit-queue N] [-admit-wait D] [-fail spec]... \
//	      [-follow http://leader:8080] [-resync 2s] \
//	      [-log json|text|off] [-slow-ms 0] [-debug-addr 127.0.0.1:6060]
//
// With -data-dir, mesh state is durable: every committed fault
// transaction is journaled (internal/journal) under <dir>/<mesh>, and on
// boot the registry is recovered — every mesh comes back with its exact
// pre-crash fault set and snapshot version, even after kill -9. -fsync
// picks the durability policy (fsync per transaction, a background
// flush interval, or none) and -checkpoint-every the WAL compaction
// cadence.
//
// -tenant-rate and -max-inflight turn on admission control
// (internal/admission): per-tenant token buckets keyed by the X-Tenant
// header plus a global concurrency gate with a bounded wait queue.
// Requests past the budget get 429 RESOURCE_EXHAUSTED with a
// Retry-After hint instead of unbounded queueing.
//
// -fail (repeatable, testing only) arms a storage failpoint
// (internal/errfs) under every mesh journal, e.g.
// "sync:path=wal.log:nth=12:err=eio" fails the 12th WAL fsync. The
// affected mesh degrades to read-only — routes serve, commits refuse
// with STORAGE, /healthz reports degraded — which is exactly what
// `make chaos-smoke` asserts.
//
// -follow turns the daemon into a read-only replica of another meshd:
// it tails the leader's /v1/meshes/{name}/watch streams (resuming via
// ?from= across reconnects, healing gaps by snapshot refetch) and
// serves route/batch/info reads at exactly the leader's snapshot
// versions, while mutations refuse with NOT_LEADER carrying the leader
// address. -resync is the mesh-list polling interval that discovers
// created and deleted meshes. Follower state lives in memory — it is
// rebuilt from the leader on boot — so -follow rejects -data-dir.
//
// -log json emits one structured access line per request on stderr
// (log/slog JSON): request ID, method, path, mesh, tenant, status, wire
// code, duration, and the per-request span breakdown (admission_wait,
// decode, walk, oracle, apply, journal_append, journal_fsync, encode —
// all _ms). With -slow-ms, requests slower than the threshold
// additionally log a WARN "slow request" record. Every response carries
// an X-Request-Id (client-supplied IDs are adopted when well-formed),
// so one grep correlates a mutation across follower and leader logs.
//
// -debug-addr opens a second, operator-only listener serving
// /debug/pprof (net/http/pprof) and /debug/vars (expvar, including the
// full /varz document under "meshd") — live profiling without exposing
// either on the serving port.
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener stops
// accepting, /healthz flips to 503, and in-flight requests get the drain
// grace period to finish; batches and watch streams still open when it
// expires are aborted via context cause and terminate their NDJSON
// streams with a CANCELED stream_error line.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/errfs"
	"repro/internal/journal"
	"repro/internal/server"
)

// failFlag collects repeatable -fail specs into errfs faults.
type failFlag []errfs.Fault

func (f *failFlag) String() string {
	specs := make([]string, len(*f))
	for i, fault := range *f {
		specs[i] = fault.String()
	}
	return strings.Join(specs, ",")
}

func (f *failFlag) Set(s string) error {
	fault, err := errfs.ParseSpec(s)
	if err != nil {
		return err
	}
	*f = append(*f, fault)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts driving -addr :0)")
	drain := flag.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown before batches are aborted")
	maxNodes := flag.Int("max-nodes", server.DefaultMaxNodes, "per-mesh node cap (width*height)")
	maxMeshes := flag.Int("max-meshes", server.DefaultMaxMeshes, "registry size cap")
	maxBatchPairs := flag.Int("max-batch-pairs", server.DefaultMaxBatchPairs, "per-request batch pair cap")
	oracleBound := flag.Int("oracle-bound", 0, "cached BFS distance fields per snapshot (0 = engine default)")
	dataDir := flag.String("data-dir", "", "journal mesh state here and recover it on boot (empty = memory only)")
	fsync := flag.String("fsync", "always", "journal durability: always, none, or a flush interval like 100ms")
	checkpointEvery := flag.Int("checkpoint-every", journal.DefaultCheckpointEvery, "compact each mesh journal after this many records")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in req/s (0 = no tenant rate gate)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant admission burst (0 = ceil of -tenant-rate)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent admitted requests across all tenants (0 = unlimited)")
	admitQueue := flag.Int("admit-queue", 64, "requests that may wait for an inflight slot (with -max-inflight)")
	admitWait := flag.Duration("admit-wait", time.Second, "longest a request waits for an inflight slot")
	follow := flag.String("follow", "", "replicate this leader meshd (base URL) and serve read-only; mutations answer NOT_LEADER with the leader address")
	resync := flag.Duration("resync", 2*time.Second, "follower mesh-list polling interval (with -follow)")
	logMode := flag.String("log", "off", "structured access logs on stderr: json, text, or off")
	slowMS := flag.Int("slow-ms", 0, "log a WARN slow-request record for requests slower than this many ms (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this extra listener (empty = off)")
	listMetrics := flag.Bool("list-metrics", false, "print every /metrics family name and exit (the make metrics-smoke contract)")
	var fails failFlag
	flag.Var(&fails, "fail", "arm a journal storage failpoint, op[:path=substr][:nth=N][:err=eio|enospc][:torn][:sticky] (repeatable; testing only)")
	flag.Parse()

	if *listMetrics {
		for _, name := range server.MetricNames() {
			fmt.Println(name)
		}
		return
	}

	if *follow != "" && *dataDir != "" {
		log.Fatalf("meshd: -follow and -data-dir are mutually exclusive: follower state is rebuilt from the leader, not from a local journal")
	}
	leaderURL := *follow
	if leaderURL != "" && !strings.Contains(leaderURL, "://") {
		leaderURL = "http://" + leaderURL
	}

	policy, every, err := journal.ParseFsync(*fsync)
	if err != nil {
		log.Fatalf("meshd: -fsync: %v", err)
	}

	var accessLogger *slog.Logger
	switch *logMode {
	case "json":
		accessLogger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		accessLogger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "off", "":
	default:
		log.Fatalf("meshd: -log: want json, text, or off, got %q", *logMode)
	}

	jopts := journal.Options{
		Fsync:           policy,
		FsyncEvery:      every,
		CheckpointEvery: *checkpointEvery,
	}
	if len(fails) > 0 {
		inj := errfs.New(nil)
		for _, fault := range fails {
			inj.Arm(fault)
			log.Printf("meshd: armed storage failpoint %v", fault)
		}
		jopts.FS = inj
	}

	srv := server.New(server.Config{
		MaxNodes:      *maxNodes,
		MaxMeshes:     *maxMeshes,
		MaxBatchPairs: *maxBatchPairs,
		OracleBound:   *oracleBound,
		DataDir:       *dataDir,
		Journal:       jopts,
		FollowerOf:    leaderURL,
		Logger:        accessLogger,
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		Admission: admission.Config{
			TenantRate:  *tenantRate,
			TenantBurst: *tenantBurst,
			MaxInflight: *maxInflight,
			MaxQueue:    *admitQueue,
			MaxWait:     *admitWait,
		},
	})
	if *tenantRate > 0 || *maxInflight > 0 {
		log.Printf("meshd: admission control on (tenant rate %g req/s burst %d, max inflight %d, queue %d, wait %v)",
			*tenantRate, *tenantBurst, *maxInflight, *admitQueue, *admitWait)
	}
	if *dataDir != "" {
		n, err := srv.Recover()
		if err != nil {
			log.Fatalf("meshd: recover %s: %v", *dataDir, err)
		}
		log.Printf("meshd: recovered %d mesh(es) from %s (fsync %s)", n, *dataDir, policy)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if leaderURL != "" {
		fol, err := cluster.New(cluster.Config{
			Leader:  leaderURL,
			Replica: srv,
			Resync:  *resync,
			Logf:    log.Printf,
		})
		if err != nil {
			log.Fatalf("meshd: -follow: %v", err)
		}
		srv.SetReplication(fol.Stats)
		log.Printf("meshd: following %s (resync %v); serving read-only", leaderURL, *resync)
		go func() {
			if err := fol.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("meshd: replication stopped: %v", err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	// Standard expvar (memstats, cmdline) plus the server's own counters
	// under "meshd" — `curl /debug/vars | jq .meshd` mirrors /varz.
	expvar.Publish("meshd", expvar.Func(func() any { return srv.Varz() }))
	mux.Handle("GET /debug/vars", expvar.Handler())

	if *debugAddr != "" {
		// Operator-only listener: live pprof profiles plus expvar, kept
		// off the serving port so profiling endpoints are never reachable
		// by route traffic. http.DefaultServeMux carries the
		// net/http/pprof registrations from its package init.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("meshd: listen -debug-addr %s: %v", *debugAddr, err)
		}
		log.Printf("meshd: debug endpoints (pprof, expvar) on http://%s/debug/", dln.Addr())
		go func() {
			if err := http.Serve(dln, http.DefaultServeMux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("meshd: debug listener: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("meshd: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("meshd: write -addr-file: %v", err)
		}
	}
	log.Printf("meshd: serving on http://%s (drain grace %v)", bound, *drain)

	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("meshd: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("meshd: draining (grace %v)", *drain)
	// Flip /healthz to 503 immediately so load balancers stop routing
	// here, give in-flight requests the grace period to finish, then
	// abort the stragglers (streaming batches) via the server's base
	// context. The shutdown context extends slightly past the grace so
	// aborted batch handlers can still write their terminal stream_error
	// line.
	srv.BeginDrain()
	timer := time.AfterFunc(*drain, func() {
		srv.Drain(fmt.Errorf("%w: %v grace elapsed", server.ErrDraining, *drain))
	})
	defer timer.Stop()
	sctx, cancel := context.WithTimeout(context.Background(), *drain+2*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("meshd: forced close after drain: %v", err)
		_ = hs.Close()
	}
	log.Printf("meshd: stopped")
}
