// Command meshfig regenerates the paper's Figure 5 panels as aligned text
// tables (or CSV), at the paper's full scale or the quick scale.
//
// Usage:
//
//	meshfig -fig 5a|5b|5c|5d|5e|delivery|all [-scale full|quick] [-csv]
//	        [-trials N] [-pairs N] [-seed N] [-workers N]
//
// The full scale matches the paper: 100x100 mesh, faults swept 0..3000.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/eval"
	"repro/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "panel to regenerate: 5a, 5b, 5c, 5d, 5e, delivery, all")
	scale := flag.String("scale", "quick", "experiment scale: full (paper) or quick")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	trials := flag.Int("trials", 0, "override trials per sweep point")
	step := flag.Int("step", 0, "override fault-count step (full scale only)")
	pairs := flag.Int("pairs", 0, "override routed pairs per trial")
	seed := flag.Int64("seed", 0, "override random seed")
	workers := flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); tables are identical for any value")
	flag.Parse()

	var cfg eval.Config
	switch *scale {
	case "full":
		cfg = eval.Default()
	case "quick":
		cfg = eval.Quick()
	default:
		fmt.Fprintf(os.Stderr, "meshfig: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *step > 0 && *scale == "full" {
		cfg.FaultCounts = cfg.FaultCounts[:0]
		for n := 0; n <= 3000; n += *step {
			cfg.FaultCounts = append(cfg.FaultCounts, n)
		}
	}
	if *pairs > 0 {
		cfg.Pairs = *pairs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	// Interrupt (ctrl-C) cancels the sweep between trials; the partial
	// table is still rendered.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSignals()

	panels := []struct {
		name  string
		title string
		run   func(context.Context, eval.Config) (*stats.Table, error)
	}{
		{"5a", "Figure 5(a): % disabled area vs faults", eval.Fig5a},
		{"5b", "Figure 5(b): number of MCCs vs faults", eval.Fig5b},
		{"5c", "Figure 5(c): % nodes in info propagation (B1/B2/B3)", eval.Fig5c},
		{"5d", "Figure 5(d): % shortest-path success (RB1/RB2/RB3)", eval.Fig5d},
		{"5e", "Figure 5(e): relative error vs optimum (E-cube/RB1/RB2/RB3)", eval.Fig5e},
		{"delivery", "Auxiliary: % delivered walks per algorithm", eval.DeliveryRates},
	}
	ran := false
	for _, p := range panels {
		if *fig != "all" && *fig != p.name {
			continue
		}
		ran = true
		start := time.Now()
		tbl, err := p.run(ctx, cfg)
		if *csv {
			fmt.Printf("# %s\n%s\n", p.title, tbl.RenderCSV())
		} else {
			fmt.Printf("%s  [%s scale, %v]\n%s\n", p.title, *scale, time.Since(start).Round(time.Millisecond), tbl.Render())
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "meshfig: interrupted; tables above are partial")
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "meshfig: %v\n", err)
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "meshfig: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
