package meshroute

import (
	"sync"
	"testing"
)

// TestFacadeConcurrentRouteAndMutate locks the package-doc promise: every
// Network method may be called from any goroutine. Readers route while a
// writer injects and repairs faults; under -race this fails if the staging
// mutex or the engine's snapshot publication is wrong. Each successful
// Result must also be self-consistent (Shortest iff Hops == Optimal) —
// one route never mixes two fault configurations.
func TestFacadeConcurrentRouteAndMutate(t *testing.T) {
	net := NewSquare(16)
	net.InjectRandom(20, 3)

	writes := 25
	if testing.Short() {
		writes = 8
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: fault churn in a corner away from the routed pairs
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := net.AddFault(C(15, 0)); err != nil {
				t.Error(err)
				return
			}
			net.RepairFault(C(15, 0))
			net.SetPolicy(PolicyXFirst)
			net.SetPolicy(PolicyDiagonal)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				s := C((g+i)%8, i%8)
				d := C(8+(i%8), 8+((g+i)%8))
				res, err := net.Route(RB2, s, d)
				if err != nil {
					continue // endpoint faulty/unreachable under churn is fine
				}
				if res.Shortest != (res.Hops == res.Optimal) {
					t.Errorf("inconsistent result: shortest=%v hops=%d optimal=%d",
						res.Shortest, res.Hops, res.Optimal)
					return
				}
				if res.Hops < res.Optimal {
					t.Errorf("route beat the oracle: %d < %d", res.Hops, res.Optimal)
					return
				}
				net.FaultCount() // exercise a locked read alongside
			}
		}(g)
	}
	wg.Wait()
}

// TestFacadeRouteBatchHonorsPolicy pins the SetPolicy/RouteBatch contract:
// the batch path must route with the same adaptive policy as Route.
func TestFacadeRouteBatchHonorsPolicy(t *testing.T) {
	for _, policy := range []struct {
		name string
		p    Policy
	}{{"diagonal", PolicyDiagonal}, {"xfirst", PolicyXFirst}, {"yfirst", PolicyYFirst}} {
		net := NewSquare(16)
		net.InjectRandom(30, 5)
		net.SetPolicy(policy.p)
		pairs := []Pair{{S: C(0, 0), D: C(15, 15)}, {S: C(2, 1), D: C(14, 12)}}
		out := net.RouteBatch(RB2, pairs, 2)
		for i, br := range out {
			if br.Err != nil || !br.Res.Delivered {
				continue
			}
			single, err := net.Route(RB2, pairs[i].S, pairs[i].D)
			if err != nil {
				t.Fatalf("%s: single route failed where batch delivered: %v", policy.name, err)
			}
			if len(single.Path) != len(br.Res.Path) {
				t.Errorf("%s pair %d: batch path len %d != single path len %d — policy not applied to batch",
					policy.name, i, len(br.Res.Path), len(single.Path))
			}
			for j := range single.Path {
				if single.Path[j] != br.Res.Path[j] {
					t.Errorf("%s pair %d: paths diverge at hop %d", policy.name, i, j)
					break
				}
			}
		}
	}
}
