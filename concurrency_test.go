package meshroute

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFacadeConcurrentRouteAndMutate locks the package-doc promise: every
// Network method may be called from any goroutine. Readers route while a
// writer injects and repairs faults; under -race this fails if the
// transaction serialization or the engine's snapshot publication is
// wrong. Each successful response must also be self-consistent (Shortest
// iff Hops == Optimal) — one route never mixes two fault configurations.
func TestFacadeConcurrentRouteAndMutate(t *testing.T) {
	ctx := context.Background()
	net := NewSquare(16)
	if err := net.InjectRandom(20, 3); err != nil {
		t.Fatal(err)
	}

	writes := 25
	if testing.Short() {
		writes = 8
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: fault churn in a corner away from the routed pairs
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := net.AddFault(C(15, 0)); err != nil {
				t.Error(err)
				return
			}
			net.RepairFault(C(15, 0))
			net.SetPolicy(PolicyXFirst)
			net.SetPolicy(PolicyDiagonal)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				req := RouteRequest{Src: C((g+i)%8, i%8), Dst: C(8+(i%8), 8+((g+i)%8))}
				resp, err := net.Route(ctx, req)
				if err != nil {
					continue // endpoint faulty/unreachable under churn is fine
				}
				if resp.Oracle.Shortest != (resp.Hops == resp.Oracle.Optimal) {
					t.Errorf("inconsistent response: shortest=%v hops=%d optimal=%d",
						resp.Oracle.Shortest, resp.Hops, resp.Oracle.Optimal)
					return
				}
				if resp.Hops < resp.Oracle.Optimal {
					t.Errorf("route beat the oracle: %d < %d", resp.Hops, resp.Oracle.Optimal)
					return
				}
				net.FaultCount() // exercise a lock-free read alongside
				net.Stats()
			}
		}(g)
	}
	wg.Wait()
}

// TestFacadeApplyIsAtomic is the acceptance test for the transaction API:
// a multi-edit Apply must publish as exactly one snapshot, and concurrent
// readers must never observe a partial transaction — the published fault
// count is always 0 or the full cluster, never in between, and every
// routed response's snapshot version maps to one of the two committed
// states.
func TestFacadeApplyIsAtomic(t *testing.T) {
	ctx := context.Background()
	net := NewSquare(12)
	cluster := []Coord{C(5, 5), C(5, 6), C(6, 5), C(6, 6), C(7, 5), C(7, 6), C(5, 7), C(6, 7), C(7, 7)}

	commits := 30
	if testing.Short() {
		commits = 10
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: add the whole cluster, then remove it, atomically
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < commits; i++ {
			err := net.Apply(func(tx *Tx) error {
				for _, c := range cluster {
					if err := tx.AddFault(c); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			err = net.Apply(func(tx *Tx) error {
				for _, c := range cluster {
					if err := tx.RepairFault(c); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if got := net.FaultCount(); got != 0 && got != len(cluster) {
					t.Errorf("observed partial transaction: %d faults (want 0 or %d)",
						got, len(cluster))
					return
				}
				st := net.Stats()
				if st.PublishedFaults != 0 && st.PublishedFaults != len(cluster) {
					t.Errorf("stats observed partial transaction: %+v", st)
					return
				}
				// A route pins one snapshot: its fault view is all-or-nothing.
				resp, err := net.Route(ctx, RouteRequest{Src: C(0, 0), Dst: C(11, 11)}, WithoutOracle())
				if err == nil && resp.SnapshotVersion == 0 {
					t.Error("response missing snapshot version")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Exactly one publication per committed transaction: initial snapshot
	// plus 2 per loop iteration.
	if got, want := net.Stats().SnapshotVersion, uint64(1+2*commits); got != want {
		t.Errorf("snapshot version = %d, want %d (one per transaction)", got, want)
	}
}

// TestFacadeRouteBatchHonorsPolicy pins the SetPolicy/RouteBatch contract:
// the batch path must route with the same adaptive policy as Route.
func TestFacadeRouteBatchHonorsPolicy(t *testing.T) {
	ctx := context.Background()
	for _, policy := range []struct {
		name string
		p    Policy
	}{{"diagonal", PolicyDiagonal}, {"xfirst", PolicyXFirst}, {"yfirst", PolicyYFirst}} {
		net := NewSquare(16)
		if err := net.InjectRandom(30, 5); err != nil {
			t.Fatal(err)
		}
		net.SetPolicy(policy.p)
		pairs := []Pair{{S: C(0, 0), D: C(15, 15)}, {S: C(2, 1), D: C(14, 12)}}
		batch, err := net.RouteBatch(ctx, BatchRequest{Pairs: pairs}, WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		items, err := batch.Drain()
		if err != nil {
			t.Fatal(err)
		}
		for i, item := range items {
			if item.Err != nil {
				continue
			}
			single, err := net.Route(ctx, RouteRequest{Src: pairs[i].S, Dst: pairs[i].D})
			if err != nil {
				t.Fatalf("%s: single route failed where batch delivered: %v", policy.name, err)
			}
			if len(single.Path) != len(item.Response.Path) {
				t.Errorf("%s pair %d: batch path len %d != single path len %d — policy not applied to batch",
					policy.name, i, len(item.Response.Path), len(single.Path))
			}
			for j := range single.Path {
				if single.Path[j] != item.Response.Path[j] {
					t.Errorf("%s pair %d: paths diverge at hop %d", policy.name, i, j)
					break
				}
			}
		}
	}
}
