package meshroute

import (
	"context"
	"errors"
	"sync"

	"repro/internal/engine"
)

// ErrWatchClosed reports a Watch whose stream ended because Close was
// called (or the watched Network will publish no more events to it).
var ErrWatchClosed = errors.New("watch closed")

// FaultEvent is one committed fault transaction as seen by a Watch: the
// snapshot version it published and the exact fault transition (nodes
// added, nodes repaired, both in row-major order) against the previous
// snapshot. Events are delivered in strictly increasing version order.
//
// The Adds and Repairs slices are shared with every other watcher of the
// same publication; treat them as read-only.
type FaultEvent struct {
	// Version is the engine snapshot version the transaction published.
	Version uint64
	// Adds are the nodes that became faulty.
	Adds []Coord
	// Repairs are the nodes that were healed.
	Repairs []Coord
	// Gap reports that this watcher's buffer overflowed and one or more
	// events older than this one were dropped (slow consumer). The
	// dropped versions are exactly the gap between the previously
	// delivered event's Version and this one; re-sync full state via
	// Faulty/Engine().Snapshot() if the deltas matter.
	Gap bool
}

// DefaultWatchBuffer is the per-watcher event buffer when WithWatchBuffer
// is not given.
const DefaultWatchBuffer = 64

// WatchOption configures a Watch.
type WatchOption func(*watchConfig)

type watchConfig struct {
	buffer int
}

// WithWatchBuffer bounds the per-watcher event buffer (default
// DefaultWatchBuffer). When a consumer falls more than n events behind,
// the oldest buffered events are dropped and the next delivered event
// carries Gap=true — publication never blocks on a slow watcher.
func WithWatchBuffer(n int) WatchOption {
	return func(c *watchConfig) {
		if n > 0 {
			c.buffer = n
		}
	}
}

// Watch is an ordered, bounded-buffer stream of the network's committed
// fault transactions. Obtain one from Network.Watch; consume with Next,
// or select on Ready and drain with Poll. A Watch is single-consumer:
// share events, not the iterator.
type Watch struct {
	n     *Network
	id    uint64
	limit int
	ready chan struct{}

	// mu guards the queue; the publisher (the engine's OnPublish hook)
	// enqueues under it, so it must never be held across blocking work.
	mu sync.Mutex
	// queue is the bounded event buffer.
	//meshlint:guardedby mu
	queue []FaultEvent
	// closed marks the stream over; err is then the terminal cause.
	//meshlint:guardedby mu
	closed bool
	//meshlint:guardedby mu
	err error
	// unhook deregisters the context AfterFunc; nil without one.
	//meshlint:guardedby mu
	unhook func() bool
}

func (w *Watch) lock()   { w.mu.Lock() }
func (w *Watch) unlock() { w.mu.Unlock() }

// Watch subscribes to the network's committed fault transactions: every
// Apply (and every direct engine Swap/Update) that publishes a snapshot
// after this call is delivered as one FaultEvent, in version order with
// no duplicates. Events the consumer does not keep up with are dropped
// oldest-first once the bounded buffer fills; the next delivered event
// then carries Gap=true (and Network.Stats counts the drop).
//
// The watch ends when ctx is canceled (Next then reports the
// cancellation) or Close is called; both unregister the watcher. A
// background ctx and an explicit Close are fine for long-lived watchers.
func (n *Network) Watch(ctx context.Context, opts ...WatchOption) *Watch {
	cfg := watchConfig{buffer: DefaultWatchBuffer}
	for _, o := range opts {
		o(&cfg)
	}
	w := &Watch{
		n:     n,
		limit: cfg.buffer,
		ready: make(chan struct{}, 1),
	}
	n.watchMu.Lock()
	n.watchSeq++
	w.id = n.watchSeq
	if n.watchers == nil {
		n.watchers = make(map[uint64]*Watch)
	}
	n.watchers[w.id] = w
	n.watchMu.Unlock()
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { w.close(canceledErr(ctx)) })
		w.lock()
		w.unhook = stop
		w.unlock()
	}
	return w
}

// fanout delivers one publication to every registered watcher. It runs
// inside the engine's writer critical section (see engine.Options
// .OnPublish), so deliveries are strictly version-ordered; each enqueue
// is a bounded, non-blocking buffer append.
func (n *Network) fanout(version uint64, delta engine.Delta) {
	ev := FaultEvent{Version: version, Adds: delta.Adds, Repairs: delta.Repairs}
	n.watchMu.Lock()
	for _, w := range n.watchers {
		w.enqueue(ev)
	}
	n.watchMu.Unlock()
}

// enqueue appends one event, dropping the oldest buffered event (and
// marking the gap) when the consumer is more than limit events behind.
func (w *Watch) enqueue(ev FaultEvent) {
	w.lock()
	if w.closed {
		w.unlock()
		return
	}
	if len(w.queue) >= w.limit {
		w.queue = w.queue[1:]
		w.n.watchDropped.Add(1)
		// The next event the consumer sees is the first after a hole;
		// flag whichever now heads the queue (the incoming event when
		// the drop emptied it).
		if len(w.queue) > 0 {
			w.queue[0].Gap = true
		} else {
			ev.Gap = true
		}
	}
	w.queue = append(w.queue, ev)
	w.unlock()
	w.notify()
}

func (w *Watch) notify() {
	select {
	case w.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives a token whenever events may be
// buffered — for select-based consumers pairing it with Poll. The signal
// is edge-style and coalesced: one token can cover many events, so drain
// Poll until it reports false after each receive.
func (w *Watch) Ready() <-chan struct{} { return w.ready }

// Poll returns the next buffered event without blocking; ok is false
// when the buffer is empty (or the watch is closed — check Err).
func (w *Watch) Poll() (ev FaultEvent, ok bool) {
	w.lock()
	defer w.unlock()
	if len(w.queue) == 0 {
		return FaultEvent{}, false
	}
	ev = w.queue[0]
	w.queue = w.queue[1:]
	return ev, true
}

// Next blocks until an event is available and returns it. It fails with
// the watch's terminal error once the stream is over: an
// ErrCanceled-wrapping error when the Watch context (or ctx) was
// canceled, ErrWatchClosed after Close. Buffered events are still
// delivered before the terminal error.
func (w *Watch) Next(ctx context.Context) (FaultEvent, error) {
	for {
		w.lock()
		if len(w.queue) > 0 {
			ev := w.queue[0]
			w.queue = w.queue[1:]
			w.unlock()
			return ev, nil
		}
		if w.closed {
			err := w.err
			w.unlock()
			return FaultEvent{}, err
		}
		w.unlock()
		select {
		case <-w.ready:
		case <-ctx.Done():
			return FaultEvent{}, canceledErr(ctx)
		}
	}
}

// Err returns the watch's terminal error: nil while the stream is live,
// ErrWatchClosed after Close, an ErrCanceled-wrapping error after a
// context cancellation.
func (w *Watch) Err() error {
	w.lock()
	defer w.unlock()
	if !w.closed {
		return nil
	}
	return w.err
}

// Close unregisters the watcher and ends the stream: buffered events
// remain readable via Poll/Next until drained, after which Next reports
// ErrWatchClosed. Idempotent and safe to call concurrently with
// publications.
func (w *Watch) Close() { w.close(ErrWatchClosed) }

func (w *Watch) close(cause error) {
	// Deregister the context callback so a closed Watch is not kept
	// reachable by a long-lived ctx (no-op when the callback fired).
	w.lock()
	unhook := w.unhook
	w.unhook = nil
	w.unlock()
	if unhook != nil {
		unhook()
	}
	w.n.watchMu.Lock()
	delete(w.n.watchers, w.id)
	w.n.watchMu.Unlock()
	w.lock()
	if !w.closed {
		w.closed = true
		w.err = cause
	}
	w.unlock()
	w.notify()
}
